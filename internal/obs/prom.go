package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): every counter as a `counter`,
// every gauge as a `gauge`, and every histogram as a native prometheus
// `histogram` with cumulative power-of-two `le` buckets plus `_sum` and
// `_count` series. Metric names are sanitized (see promName) and
// prefixed with "shahin_"; output order is deterministic. A nil
// recorder writes nothing.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	m := r.Metrics()

	names := make([]string, 0, len(m.Counters))
	for name := range m.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := "shahin_" + promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			pn, promHelpFor("counter", name), pn, pn, m.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range m.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := "shahin_" + promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			pn, promHelpFor("gauge", name), pn, pn, m.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range m.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePromHistogram(w, name, m.Histograms[name]); err != nil {
			return err
		}
	}

	if st, ok := r.SLOStatus(); ok {
		if err := writePromSLO(w, st); err != nil {
			return err
		}
	}

	if err := writePromBuildInfo(w); err != nil {
		return err
	}

	pn := "shahin_uptime_ms"
	_, err := fmt.Fprintf(w, "# HELP %s Milliseconds since the recorder started.\n# TYPE %s gauge\n%s %s\n",
		pn, pn, pn, formatPromFloat(m.UptimeMS))
	return err
}

// promHelp carries curated HELP text for the well-known metric names;
// anything unlisted falls back to a generic line via promHelpFor. The
// map is only ever looked up by key — never iterated — so its order
// cannot leak into the (deterministic) output.
var promHelp = map[string]string{
	CounterInvocations:       "Classifier Predict calls, including pool pre-labelling.",
	CounterReusedSamples:     "Pooled samples served in place of fresh classifier calls.",
	GaugeWarmPooledItemsets:  "Itemsets currently holding materialised perturbations in the warm pool.",
	GaugeServeStoreSize:      "Explanations currently held by the serving store.",
	GaugeBreakerState:        "Circuit-breaker state: 0 closed, 1 open, 2 half-open.",
	GaugeServeQueueDepth:     "Requests currently queued for the next serving flush.",
	GaugeRuntimeHeapLive:     "Live heap bytes (runtime/metrics /memory/classes/heap/objects).",
	GaugeRuntimeHeapGoal:     "Heap size the garbage collector is aiming for.",
	GaugeRuntimeAllocBytes:   "Cumulative heap bytes allocated since process start.",
	GaugeRuntimeAllocObjects: "Cumulative heap objects allocated since process start.",
	GaugeRuntimeGoroutines:   "Live goroutines.",
	GaugeRuntimeGCCycles:     "Completed GC cycles since process start.",
	GaugeRuntimeGCCPUPPM:     "Fraction of available CPU spent in the garbage collector, in parts per million.",
	HistRuntimeGCPause:       "GC stop-the-world pause distribution folded from runtime/metrics.",
	HistRuntimeSchedLatency:  "Goroutine scheduling latency distribution folded from runtime/metrics.",
}

// promHelpFor returns the curated HELP text for a metric, or a generic
// line naming the metric and its kind.
func promHelpFor(kind, name string) string {
	if h, ok := promHelp[name]; ok {
		return h
	}
	return fmt.Sprintf("Shahin %s %q.", kind, name)
}

// writePromBuildInfo renders the build/environment fingerprint as a
// constant gauge whose labels match the ledger's env section, so a
// scraped fleet is attributable to the exact toolchain and commit a
// ledger was produced on.
func writePromBuildInfo(w io.Writer) error {
	fp := Fingerprint()
	pn := "shahin_build_info"
	if _, err := fmt.Fprintf(w, "# HELP %s Build and environment fingerprint; the value is always 1 and the labels mirror the ledger env section.\n# TYPE %s gauge\n", pn, pn); err != nil {
		return err
	}
	dirty := "false"
	if fp.GitDirty {
		dirty = "true"
	}
	_, err := fmt.Fprintf(w, "%s{dirty=%q,goarch=%q,goos=%q,goversion=%q,num_cpu=\"%d\",revision=%q} 1\n",
		pn, dirty, fp.GOARCH, fp.GOOS, fp.GoVersion, fp.NumCPU, fp.GitCommit)
	return err
}

// writePromSLO renders the SLO tracker's rolling-window evaluation:
// per-objective compliance, burn rate, and met flag, labelled by
// objective name, plus the window length.
func writePromSLO(w io.Writer, st SLOStatus) error {
	series := []struct {
		name string
		help string
		get  func(o SLOObjective) float64
	}{
		{"slo_compliance", "Good-event fraction over the rolling SLO window.",
			func(o SLOObjective) float64 { return o.Compliance }},
		{"slo_burn_rate", "Error-budget burn rate over the rolling SLO window (1.0 = burning exactly at budget).",
			func(o SLOObjective) float64 { return o.BurnRate }},
		{"slo_met", "Whether the objective currently meets its goal (1) or not (0).",
			func(o SLOObjective) float64 {
				if o.Met {
					return 1
				}
				return 0
			}},
	}
	for _, s := range series {
		pn := "shahin_" + s.name
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", pn, s.help, pn); err != nil {
			return err
		}
		for _, o := range st.Objectives {
			if _, err := fmt.Fprintf(w, "%s{objective=%q} %s\n", pn, o.Name, formatPromFloat(s.get(o))); err != nil {
				return err
			}
		}
	}
	pn := "shahin_slo_window_ms"
	_, err := fmt.Fprintf(w, "# HELP %s Rolling SLO window length in milliseconds.\n# TYPE %s gauge\n%s %s\n",
		pn, pn, pn, formatPromFloat(st.WindowMS))
	return err
}

// writePromHistogram renders one histogram snapshot as a prometheus
// histogram: cumulative bucket counts keyed by upper bound, then sum
// and count.
func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	pn := "shahin_" + promName(name)
	help, ok := promHelp[name]
	if !ok {
		help = fmt.Sprintf("Shahin histogram %q (power-of-two ns buckets).", name)
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", pn, help, pn); err != nil {
		return err
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.UpperNS, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, s.Count, pn, s.SumNS, pn, s.Count)
	return err
}

// promName sanitizes a metric name to the prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: every other rune (dashes, dots, spaces)
// becomes an underscore, and a leading digit gets one prepended.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	b := []byte(name)
	for i, c := range b {
		valid := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || c >= '0' && c <= '9'
		if !valid {
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		return "_" + string(b)
	}
	return string(b)
}

// formatPromFloat renders a float the way prometheus expects (shortest
// round-trippable form).
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

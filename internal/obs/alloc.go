package obs

import "runtime/metrics"

// AllocMark is a point-in-time reading of the process's cumulative heap
// allocation counters (runtime/metrics /gc/heap/allocs), cheap enough
// to take at stage boundaries: unlike runtime.ReadMemStats it does not
// stop the world. Marks are process-wide, so a delta attributes every
// allocation the process made between the two reads — for the
// gate-serialised flush paths that is the flush's own work plus a small
// amount of unrelated background (HTTP handlers, the sampler), which is
// the documented precision of the per-stage allocation columns.
type AllocMark struct {
	Bytes   uint64
	Objects uint64
}

// AllocDelta is the allocation activity between two marks.
type AllocDelta struct {
	Bytes   int64
	Objects int64
}

// allocSampleNames is the fixed read order for NowAllocs.
var allocSampleNames = [2]string{sampleAllocBytes, sampleAllocObjs}

// NowAllocs reads the cumulative allocation counters. Safe for
// concurrent use; each call reads fresh samples.
func NowAllocs() AllocMark {
	var s [2]metrics.Sample
	for i, name := range allocSampleNames {
		s[i].Name = name
	}
	metrics.Read(s[:])
	return AllocMark{
		Bytes:   sampleUint64(s[0]),
		Objects: sampleUint64(s[1]),
	}
}

// Since returns the allocation activity between the mark and now.
// Cumulative counters never decrease, so the delta clamps at zero
// defensively rather than going negative.
func (m AllocMark) Since() AllocDelta {
	now := NowAllocs()
	d := AllocDelta{
		Bytes:   int64(now.Bytes - m.Bytes),
		Objects: int64(now.Objects - m.Objects),
	}
	if d.Bytes < 0 {
		d.Bytes = 0
	}
	if d.Objects < 0 {
		d.Objects = 0
	}
	return d
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// EventType names the structured events the pipeline emits. Each run
// stage that creates or consumes reusable work reports itself, so the
// event log answers the provenance question the cost ledger cannot:
// *which* materialised unit served *which* explanation.
type EventType string

const (
	// EventPoolBuild marks the completion of a pool-construction phase:
	// Itemsets materialised, Fresh classifier calls spent, DurMS elapsed.
	EventPoolBuild EventType = "pool_build"
	// EventPreLabel records the up-front labelling of one itemset's τ
	// perturbations (Itemset, Fresh = labels bought, DurMS).
	EventPreLabel EventType = "pre_label"
	// EventRemine marks a streaming itemset recomputation (Itemsets =
	// frequent sets after the re-mine, DurMS).
	EventRemine EventType = "re_mine"
	// EventCacheEvict records one repository eviction.
	EventCacheEvict EventType = "cache_evict"
	// EventTupleExplained is the per-explanation provenance record:
	// Tuple index, Explainer, the first matched frequent Itemset,
	// Pooled vs Fresh sample counts, CacheHits, DurMS, and — when the
	// tuple was not answered cleanly — its degradation Status.
	EventTupleExplained EventType = "tuple_explained"
	// EventExactShap is the per-explanation provenance record of the
	// exact TreeSHAP fast path, emitted in place of tuple_explained:
	// Tuple index, Explainer, NodeVisits = tree nodes walked by the path
	// recursion (the exact path's unit of work, replacing pooled sample
	// counts), Fresh = the single target-class invocation, DurMS, Stages.
	EventExactShap EventType = "exact_shap"
	// EventExactFallback records that a run requested the exact
	// explainer but the backend did not qualify (fault chain installed,
	// or the classifier does not unwrap to an owned tree ensemble);
	// State names the reason and the run proceeded with KernelSHAP.
	EventExactFallback EventType = "exact_fallback"
	// EventBreakerState records one circuit-breaker transition; State
	// carries the edge ("closed->open", "open->half-open", ...).
	EventBreakerState EventType = "breaker_state"
	// EventServeFlush records one serving flush: Itemsets carries the
	// flush size in tuples, Pooled the samples the flush served from the
	// warm pool, Fresh the classifier invocations it spent, and DurMS
	// the flush latency.
	EventServeFlush EventType = "serve_flush"
	// EventServeDrain records a graceful drain: Itemsets carries the
	// number of queued requests flushed on the way out.
	EventServeDrain EventType = "serve_drain"
	// EventGCCycle records garbage collection observed by the runtime
	// sampler between two ticks: Itemsets carries the number of cycles
	// completed, Bytes the live heap after the tick, and DurMS the
	// largest pause folded in during the tick.
	EventGCCycle EventType = "gc_cycle"
	// EventHeapSample is a periodic (decimated — see the runtime
	// sampler's stride constants) heap snapshot: Bytes carries the live
	// heap, Goroutines the goroutine count. Chrome traces render these
	// as counter tracks under the request spans.
	EventHeapSample EventType = "heap_sample"
)

// Event is one entry of the run's structured event log. Fields are a
// union across event types; unused ones marshal away. Tuple is -1 for
// events not scoped to a single explanation, so index 0 stays visible.
type Event struct {
	Seq  int64     `json:"seq"`
	TMS  float64   `json:"t_ms"`
	Type EventType `json:"type"`

	Tuple     int    `json:"tuple"`
	Explainer string `json:"explainer,omitempty"`
	// Itemset is the provenance unit: the matched frequent itemset of a
	// tuple_explained event, or the itemset being pre-labelled.
	Itemset  string `json:"itemset,omitempty"`
	Itemsets int    `json:"itemsets,omitempty"`
	// Pooled counts samples served from the repository, Fresh the
	// classifier invocations spent instead.
	Pooled    int64 `json:"pooled_samples,omitempty"`
	Fresh     int64 `json:"fresh_samples,omitempty"`
	CacheHits int64 `json:"cache_hits,omitempty"`
	// NodeVisits counts tree nodes walked by the exact TreeSHAP
	// recursion for one tuple; it rides exact_shap events as that
	// path's unit of work in place of pooled sample counts.
	NodeVisits int64   `json:"node_visits,omitempty"`
	DurMS      float64 `json:"dur_ms,omitempty"`
	// Bytes is a byte quantity: the live heap of a gc_cycle or
	// heap_sample event.
	Bytes int64 `json:"bytes,omitempty"`
	// Goroutines rides heap_sample events.
	Goroutines int64 `json:"goroutines,omitempty"`
	// State is a breaker_state transition edge ("closed->open").
	State string `json:"state,omitempty"`
	// Name identifies which instance emitted the event when several
	// share one recorder: a breaker_state event from a router's
	// per-replica breaker carries that replica's name here ("" for the
	// classifier chain's single breaker).
	Name string `json:"name,omitempty"`
	// Status marks a tuple_explained event whose tuple was answered
	// degraded (pooled/cached labels) or failed; empty means ok.
	Status string `json:"status,omitempty"`
	// Stages is the per-tuple latency attribution stamped onto
	// tuple_explained events when a recorder is measuring stages.
	Stages *StageBreakdown `json:"stages,omitempty"`
}

// DefaultEventCapacity bounds the event log unless SetEventCapacity
// overrides it. A full log drops the oldest events (the live tail is
// the useful part) and counts every drop.
const DefaultEventCapacity = 8192

// eventLog is a bounded ring of events. Guarded by its own mutex so
// event emission never contends with the counter registry.
type eventLog struct {
	mu      sync.Mutex
	buf     []Event // ring storage, len == capacity once full
	cap     int
	next    int   // ring write position once len(buf) == cap
	seq     int64 // total events ever emitted
	dropped int64
}

// emit appends one event, stamping its sequence number, and overwrites
// the oldest entry when the ring is full.
func (l *eventLog) emit(e Event) {
	l.mu.Lock()
	e.Seq = l.seq
	l.seq++
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % l.cap
		l.dropped++
	}
	l.mu.Unlock()
}

// snapshot returns the retained events in emission order plus the count
// of events dropped to the capacity bound.
func (l *eventLog) snapshot() ([]Event, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out, l.dropped
}

// Emit appends one structured event to the run's event log, stamping
// its sequence number and time offset. Safe for concurrent use; no-op
// on a nil receiver.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	e.TMS = r.sinceStartMS()
	r.events.emit(e)
}

// Events returns the retained events in emission order and how many
// older events the capacity bound dropped. Nil receivers report nothing.
func (r *Recorder) Events() ([]Event, int64) {
	if r == nil {
		return nil, 0
	}
	return r.events.snapshot()
}

// SetEventCapacity resizes the event log bound (minimum 1), dropping
// retained events. Call before the run starts. Nil-safe.
func (r *Recorder) SetEventCapacity(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	l := r.events
	l.mu.Lock()
	l.cap = n
	l.buf = l.buf[:0]
	l.next = 0
	l.mu.Unlock()
}

// WriteEvents drains the retained events as JSONL, one event per line
// in emission order. A nil recorder writes nothing.
func (r *Recorder) WriteEvents(w io.Writer) error {
	if r == nil {
		return nil
	}
	events, _ := r.events.snapshot()
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

// EventsDropped reports how many events the capacity bound has
// discarded so far (0 on a nil receiver).
func (r *Recorder) EventsDropped() int64 {
	if r == nil {
		return 0
	}
	_, dropped := r.events.snapshot()
	return dropped
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed stage of a run. Spans nest: Child starts a
// sub-stage under the receiver. A span is open until End is called;
// Duration of an open span reads the running clock. All methods are
// safe for concurrent use and no-ops on a nil receiver, so a pipeline
// stage can be instrumented whether or not a recorder is attached.
type Span struct {
	name  string
	start time.Time
	epoch time.Time // recorder start; anchors relative dump times

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	traceID  string // distributed-trace identity; children inherit traceID
	spanID   string
	parentID string // span ID of the remote parent that sent the traceparent
	attrs    map[string]any
	children []*Span
}

// StartSpan opens a root span. Returns nil (whose methods no-op) on a
// nil receiver.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now(), epoch: r.start}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// StartDetachedSpan opens a root span that is NOT added to the
// recorder's trace forest. Request-scoped roots use this: a long-lived
// server would otherwise accumulate one span per request forever, so
// request roots instead go to the bounded exemplar ring after End.
// Returns nil on a nil receiver.
func (r *Recorder) StartDetachedSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{name: name, start: time.Now(), epoch: r.start}
}

// Child opens a nested span under s, inheriting the trace ID. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), epoch: s.epoch}
	s.mu.Lock()
	c.traceID = s.traceID
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddChild attaches an already-measured child span: the serving layer
// synthesises one child per attributed stage (queue wait, batch
// assembly, …) onto a request's root after the flush reports its
// breakdown. The child is created ended, with the given start and
// duration. Nil-safe; returns the child.
func (s *Span) AddChild(name string, start time.Time, dur time.Duration, attrs map[string]any) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start, epoch: s.epoch, dur: dur, ended: true}
	if len(attrs) > 0 {
		c.attrs = make(map[string]any, len(attrs))
		for k, v := range attrs {
			c.attrs[k] = v
		}
	}
	s.mu.Lock()
	c.traceID = s.traceID
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetTrace stamps the span with its distributed-trace identity: the
// trace it belongs to, its own span ID, and (optionally) the span ID of
// the remote parent that carried the incoming traceparent. Children
// created afterwards inherit the trace ID. Nil-safe.
func (s *Span) SetTrace(traceID, spanID, parentID string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.traceID = traceID
	s.spanID = spanID
	s.parentID = parentID
	s.mu.Unlock()
}

// End closes the span (idempotent) and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// Duration returns the span's length: final if ended, running so far if
// still open (0 on a nil receiver).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SetAttr attaches a key/value annotation (itemset counts, batch sizes)
// to the span. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SpanDump is the JSON shape of one span in a trace dump. Times are
// milliseconds; StartMS is relative to the recorder's start.
type SpanDump struct {
	Name     string         `json:"name"`
	TraceID  string         `json:"trace_id,omitempty"`
	SpanID   string         `json:"span_id,omitempty"`
	ParentID string         `json:"parent_span_id,omitempty"`
	StartMS  float64        `json:"start_ms"`
	DurMS    float64        `json:"dur_ms"`
	InFlight bool           `json:"in_flight,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanDump    `json:"children,omitempty"`
}

// Dump snapshots the span subtree (nil on a nil receiver). Safe to call
// on a live span; open descendants are marked in-flight.
func (s *Span) Dump() *SpanDump {
	if s == nil {
		return nil
	}
	return s.dump()
}

// dump snapshots the span subtree. Lock order is strictly parent before
// child, so recursion cannot deadlock.
func (s *Span) dump() *SpanDump {
	s.mu.Lock()
	d := &SpanDump{
		Name:     s.name,
		TraceID:  s.traceID,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		StartMS:  float64(s.start.Sub(s.epoch)) / float64(time.Millisecond),
	}
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
		d.InFlight = true
	}
	d.DurMS = float64(dur) / float64(time.Millisecond)
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.dump())
	}
	return d
}

// Trace snapshots every root span recorded so far (nil on a nil
// receiver).
func (r *Recorder) Trace() []*SpanDump {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	roots := make([]*Span, len(r.spans))
	copy(roots, r.spans)
	r.mu.RUnlock()
	out := make([]*SpanDump, len(roots))
	for i, s := range roots {
		out[i] = s.dump()
	}
	return out
}

// traceFile is the envelope WriteTrace emits.
type traceFile struct {
	UptimeMS float64     `json:"uptime_ms"`
	Spans    []*SpanDump `json:"spans"`
}

// WriteTrace writes the span dump as indented JSON. A nil recorder
// writes an empty trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	tf := traceFile{Spans: r.Trace()}
	if tf.Spans == nil {
		tf.Spans = []*SpanDump{}
	}
	if r != nil {
		tf.UptimeMS = float64(time.Since(r.start)) / float64(time.Millisecond)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tf)
}

// StageTotals sums span durations by name across the whole recorded
// forest: the per-stage wall-time breakdown of everything run under
// this recorder. Open spans contribute their running duration.
func (r *Recorder) StageTotals() map[string]time.Duration {
	if r == nil {
		return nil
	}
	totals := make(map[string]time.Duration)
	var walk func(d *SpanDump)
	walk = func(d *SpanDump) {
		totals[d.Name] += time.Duration(d.DurMS * float64(time.Millisecond))
		for _, c := range d.Children {
			walk(c)
		}
	}
	for _, root := range r.Trace() {
		walk(root)
	}
	return totals
}

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed stage of a run. Spans nest: Child starts a
// sub-stage under the receiver. A span is open until End is called;
// Duration of an open span reads the running clock. All methods are
// safe for concurrent use and no-ops on a nil receiver, so a pipeline
// stage can be instrumented whether or not a recorder is attached.
type Span struct {
	name  string
	start time.Time
	epoch time.Time // recorder start; anchors relative dump times

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    map[string]any
	children []*Span
}

// StartSpan opens a root span. Returns nil (whose methods no-op) on a
// nil receiver.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now(), epoch: r.start}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// Child opens a nested span under s. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), epoch: s.epoch}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span (idempotent) and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// Duration returns the span's length: final if ended, running so far if
// still open (0 on a nil receiver).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SetAttr attaches a key/value annotation (itemset counts, batch sizes)
// to the span. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SpanDump is the JSON shape of one span in a trace dump. Times are
// milliseconds; StartMS is relative to the recorder's start.
type SpanDump struct {
	Name     string         `json:"name"`
	StartMS  float64        `json:"start_ms"`
	DurMS    float64        `json:"dur_ms"`
	InFlight bool           `json:"in_flight,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanDump    `json:"children,omitempty"`
}

// dump snapshots the span subtree. Lock order is strictly parent before
// child, so recursion cannot deadlock.
func (s *Span) dump() *SpanDump {
	s.mu.Lock()
	d := &SpanDump{
		Name:    s.name,
		StartMS: float64(s.start.Sub(s.epoch)) / float64(time.Millisecond),
	}
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
		d.InFlight = true
	}
	d.DurMS = float64(dur) / float64(time.Millisecond)
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.dump())
	}
	return d
}

// Trace snapshots every root span recorded so far (nil on a nil
// receiver).
func (r *Recorder) Trace() []*SpanDump {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	roots := make([]*Span, len(r.spans))
	copy(roots, r.spans)
	r.mu.RUnlock()
	out := make([]*SpanDump, len(roots))
	for i, s := range roots {
		out[i] = s.dump()
	}
	return out
}

// traceFile is the envelope WriteTrace emits.
type traceFile struct {
	UptimeMS float64     `json:"uptime_ms"`
	Spans    []*SpanDump `json:"spans"`
}

// WriteTrace writes the span dump as indented JSON. A nil recorder
// writes an empty trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	tf := traceFile{Spans: r.Trace()}
	if tf.Spans == nil {
		tf.Spans = []*SpanDump{}
	}
	if r != nil {
		tf.UptimeMS = float64(time.Since(r.start)) / float64(time.Millisecond)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tf)
}

// StageTotals sums span durations by name across the whole recorded
// forest: the per-stage wall-time breakdown of everything run under
// this recorder. Open spans contribute their running duration.
func (r *Recorder) StageTotals() map[string]time.Duration {
	if r == nil {
		return nil
	}
	totals := make(map[string]time.Duration)
	var walk func(d *SpanDump)
	walk = func(d *SpanDump) {
		totals[d.Name] += time.Duration(d.DurMS * float64(time.Millisecond))
		for _, c := range d.Children {
			walk(c)
		}
	}
	for _, root := range r.Trace() {
		walk(root)
	}
	return totals
}

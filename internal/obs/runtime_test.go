package obs

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"
)

// runtimeTestSink keeps test allocations live so the runtime metrics
// the sampler reads actually move.
var runtimeTestSink [][]byte

// TestRuntimeSamplerLifecycle drives the full sampler lifecycle —
// start, tick, stop — and checks the telemetry lands in gauges,
// histograms, status, and events. Run under -race this also verifies
// the sampler goroutine's synchronisation against concurrent readers.
func TestRuntimeSamplerLifecycle(t *testing.T) {
	r := NewRecorder()
	s := r.StartRuntimeSampling(time.Millisecond)
	if s == nil {
		t.Fatal("StartRuntimeSampling returned nil sampler")
	}
	if again := r.StartRuntimeSampling(time.Hour); again != s {
		t.Fatal("second Start returned a different sampler; want idempotence")
	}

	// Concurrent readers while the sampler ticks: the Prometheus dump,
	// the ledger snapshot, and the status accessor must all be safe.
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				var buf bytes.Buffer
				_ = r.WritePrometheus(&buf)
				r.Ledger("race")
				r.RuntimeStatus()
			}
		}()
	}

	// Allocate and force GC cycles so pauses and cycle counts move.
	for i := 0; i < 8; i++ {
		runtimeTestSink = append(runtimeTestSink, make([]byte, 1<<20))
		runtime.GC()
		time.Sleep(2 * time.Millisecond)
	}
	close(stopReaders)
	wg.Wait()

	st, ok := r.RuntimeStatus()
	if !ok {
		t.Fatal("no runtime status after sampling")
	}
	if st.Samples < 2 {
		t.Errorf("samples = %d, want >= 2", st.Samples)
	}
	if st.HeapLiveBytes == 0 || st.HeapGoalBytes == 0 || st.TotalAllocBytes == 0 {
		t.Errorf("heap stats empty: %+v", st)
	}
	if st.Goroutines < 1 {
		t.Errorf("goroutines = %d", st.Goroutines)
	}
	if st.GCCycles == 0 {
		t.Errorf("gc cycles = 0 after %d forced GCs", 8)
	}
	if st.GCPauseMaxNS <= 0 || st.GCPauseP50NS <= 0 {
		t.Errorf("gc pause quantiles empty: %+v", st)
	}

	if got := r.Gauge(GaugeRuntimeHeapLive).Value(); got <= 0 {
		t.Errorf("heap live gauge = %d", got)
	}
	if got := r.Gauge(GaugeRuntimeGCCycles).Value(); got <= 0 {
		t.Errorf("gc cycles gauge = %d", got)
	}
	if got := r.Histogram(HistRuntimeGCPause).Count(); got <= 0 {
		t.Errorf("gc pause histogram count = %d", got)
	}
	if got := r.Histogram(HistRuntimeSchedLatency).Count(); got <= 0 {
		t.Errorf("sched latency histogram count = %d", got)
	}

	gcEvents, heapEvents := 0, 0
	events, _ := r.Events()
	for _, e := range events {
		switch e.Type {
		case EventGCCycle:
			gcEvents++
			if e.Itemsets <= 0 || e.Bytes < 0 {
				t.Errorf("malformed gc_cycle event: %+v", e)
			}
		case EventHeapSample:
			heapEvents++
			if e.Bytes <= 0 || e.Goroutines <= 0 {
				t.Errorf("malformed heap_sample event: %+v", e)
			}
		}
	}
	if gcEvents == 0 {
		t.Error("no gc_cycle events after forced GCs")
	}
	if heapEvents == 0 {
		t.Error("no heap_sample events")
	}

	r.StopRuntimeSampling()
	// Status must survive Stop, and a stopped recorder accepts both a
	// second Stop and a fresh Start.
	if _, ok := r.RuntimeStatus(); !ok {
		t.Fatal("runtime status lost after StopRuntimeSampling")
	}
	r.StopRuntimeSampling()
	s2 := r.StartRuntimeSampling(time.Millisecond)
	if s2 == nil || s2 == s {
		t.Fatal("restart after Stop did not create a fresh sampler")
	}
	r.StopRuntimeSampling()
}

// TestRuntimeSamplerNilSafety: every entry point tolerates a nil
// recorder.
func TestRuntimeSamplerNilSafety(t *testing.T) {
	var r *Recorder
	if s := r.StartRuntimeSampling(time.Millisecond); s != nil {
		t.Error("nil recorder returned a sampler")
	}
	r.StopRuntimeSampling()
	if _, ok := r.RuntimeStatus(); ok {
		t.Error("nil recorder reported runtime status")
	}
}

// TestNowAllocs: the MemStats-delta marks must report monotonic,
// nonzero growth across a deliberate allocation burst.
func TestNowAllocs(t *testing.T) {
	mark := NowAllocs()
	if mark.Bytes == 0 || mark.Objects == 0 {
		t.Fatalf("initial mark empty: %+v", mark)
	}
	for i := 0; i < 100; i++ {
		runtimeTestSink = append(runtimeTestSink, make([]byte, 16<<10))
	}
	d := mark.Since()
	if d.Bytes <= 0 || d.Objects <= 0 {
		t.Fatalf("delta after allocating: %+v", d)
	}
	// runtime/metrics allocation counters are flushed from per-P caches
	// lazily, so the delta can run slightly behind the exact total; half
	// the deliberate burst is a safe floor.
	if d.Bytes < 100*16<<10/2 {
		t.Errorf("delta bytes %d < half the %d deliberately allocated", d.Bytes, 100*16<<10)
	}
}

// TestLedgerSchema3RoundTrip: a sampled recorder's ledger carries the
// runtime section and attached benchmarks through write/read.
func TestLedgerSchema3RoundTrip(t *testing.T) {
	r := NewRecorder()
	r.StartRuntimeSampling(time.Millisecond)
	runtime.GC()
	r.StopRuntimeSampling()

	l := r.Ledger("schema3")
	if l.Schema != 3 {
		t.Fatalf("schema = %d, want 3", l.Schema)
	}
	if l.Runtime == nil || l.Runtime.Samples < 1 {
		t.Fatalf("runtime section missing: %+v", l.Runtime)
	}
	l.Benchmarks = []BenchmarkResult{
		{Name: "pkg.Fast", Runs: 1000, NsPerOp: 120.5, AllocsPerOp: 2, BytesPerOp: 96},
	}

	var buf bytes.Buffer
	if err := WriteLedger(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLedger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Runtime == nil || back.Runtime.TotalAllocBytes != l.Runtime.TotalAllocBytes {
		t.Fatalf("runtime section did not round-trip: %+v", back.Runtime)
	}
	if len(back.Benchmarks) != 1 || back.Benchmarks[0] != l.Benchmarks[0] {
		t.Fatalf("benchmarks did not round-trip: %+v", back.Benchmarks)
	}
}

// TestReadLedgerAcceptsOlderSchemas: schema 1 and 2 baselines must
// still parse — the compare gates are conditional on the data they
// carry, not on the stamp.
func TestReadLedgerAcceptsOlderSchemas(t *testing.T) {
	for _, raw := range []string{
		`{"schema":1,"name":"v1"}`,
		`{"schema":2,"name":"v2"}`,
	} {
		if _, err := ReadLedger(bytes.NewReader([]byte(raw))); err != nil {
			t.Errorf("ReadLedger(%s): %v", raw, err)
		}
	}
}

// benchLedger builds a schema-3 ledger with one benchmark entry.
func benchLedger(allocs, bytesPerOp int64) *RunLedger {
	l := &RunLedger{
		Schema: LedgerSchemaVersion,
		Metrics: Metrics{Counters: map[string]int64{
			CounterInvocations:   1000,
			CounterReusedSamples: 3000,
		}},
		WallMS: 100,
		Benchmarks: []BenchmarkResult{
			{Name: "pkg.Hot", Runs: 100, NsPerOp: 50, AllocsPerOp: allocs, BytesPerOp: bytesPerOp},
		},
	}
	return l
}

// TestCompareLedgersBenchmarkGates: the allocation gates fire on a
// doubled allocs/op, tolerate slack, skip silently when the baseline
// has no benchmark data, and treat a dropped benchmark as a
// regression.
func TestCompareLedgersBenchmarkGates(t *testing.T) {
	th := Thresholds{Wall: 10, Reuse: 1, AllocsPerOp: 0.5, BytesPerOp: 0.5}

	// Baseline without benchmarks: no benchmark deltas, no regression,
	// even when the fresh run carries them — schema-2 baselines compare
	// cleanly.
	old := benchLedger(10, 1000)
	old.Benchmarks = nil
	deltas, regressed := CompareLedgers(old, benchLedger(99999, 1<<30), th)
	if regressed {
		t.Error("benchmark-less baseline regressed on new benchmark data")
	}
	for _, d := range deltas {
		if d.Metric == "bench_pkg.Hot_allocs_per_op" {
			t.Error("benchmark delta emitted without baseline data")
		}
	}

	// A 2x allocs/op regression must fail the gate.
	if _, regressed := CompareLedgers(benchLedger(10, 1000), benchLedger(20, 1000), th); !regressed {
		t.Error("2x allocs/op did not regress")
	}
	// Within the fractional threshold: fine.
	if _, regressed := CompareLedgers(benchLedger(10, 1000), benchLedger(14, 1000), th); regressed {
		t.Error("+40% allocs/op regressed despite 50% threshold")
	}
	// 2x bytes/op regression.
	if _, regressed := CompareLedgers(benchLedger(10, 1000), benchLedger(10, 2000), th); !regressed {
		t.Error("2x bytes/op did not regress")
	}
	// Zero-alloc baseline: one stray alloc (and a few stray bytes) sit
	// inside the absolute slack; more than that regresses.
	if _, regressed := CompareLedgers(benchLedger(0, 0), benchLedger(1, 32), th); regressed {
		t.Error("single-alloc jitter over a zero baseline regressed")
	}
	if _, regressed := CompareLedgers(benchLedger(0, 0), benchLedger(2, 256), th); !regressed {
		t.Error("real growth over a zero baseline did not regress")
	}
	// ns/op is recorded but never gated.
	slow := benchLedger(10, 1000)
	slow.Benchmarks[0].NsPerOp = 1e9
	if _, regressed := CompareLedgers(benchLedger(10, 1000), slow, th); regressed {
		t.Error("ns/op increase regressed; wall-time noise must not gate")
	}
	// A benchmark the fresh run dropped is a regression.
	gone := benchLedger(10, 1000)
	gone.Benchmarks = nil
	if _, regressed := CompareLedgers(benchLedger(10, 1000), gone, th); !regressed {
		t.Error("dropped benchmark did not regress")
	}
}

// TestCompareLedgersGCCPUGate: the GC CPU fraction gates on absolute
// increase, only when the baseline sampled it.
func TestCompareLedgersGCCPUGate(t *testing.T) {
	th := Thresholds{Wall: 10, Reuse: 1, GCCPU: 0.25}
	withGC := func(frac float64) *RunLedger {
		l := benchLedger(1, 1)
		l.Benchmarks = nil
		l.Runtime = &RuntimeStatus{Samples: 5, GCCPUFraction: frac}
		return l
	}
	noRT := benchLedger(1, 1)
	noRT.Benchmarks = nil

	if _, regressed := CompareLedgers(noRT, withGC(0.99), th); regressed {
		t.Error("runtime-less baseline regressed on new runtime data")
	}
	if _, regressed := CompareLedgers(withGC(0.05), withGC(0.2), th); regressed {
		t.Error("GC CPU within threshold regressed")
	}
	if _, regressed := CompareLedgers(withGC(0.05), withGC(0.5), th); !regressed {
		t.Error("GC CPU blowup did not regress")
	}
	if _, regressed := CompareLedgers(withGC(0.05), noRT, th); !regressed {
		t.Error("dropped runtime section did not regress")
	}
}

// TestHistogramQuantileEdges pins the quantile edge semantics: empty
// histograms answer 0, single-sample histograms answer that sample for
// every q, and q is clamped into [0, 1] with min/max at the ends.
func TestHistogramQuantileEdges(t *testing.T) {
	empty := newHistogram()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot Quantile = %v, want 0", got)
	}

	single := newHistogram()
	single.Observe(100 * time.Nanosecond)
	for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.99, 1, 1.5} {
		if got := single.Quantile(q); got != 100*time.Nanosecond {
			t.Errorf("single.Quantile(%v) = %v, want 100ns", q, got)
		}
	}
	snap := single.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := snap.Quantile(q); got != 100*time.Nanosecond {
			t.Errorf("single snapshot Quantile(%v) = %v, want 100ns", q, got)
		}
	}

	multi := newHistogram()
	multi.Observe(10 * time.Nanosecond)
	multi.Observe(1000 * time.Nanosecond)
	if got := multi.Quantile(0); got != 10*time.Nanosecond {
		t.Errorf("Quantile(0) = %v, want observed min", got)
	}
	if got := multi.Quantile(1); got != 1000*time.Nanosecond {
		t.Errorf("Quantile(1) = %v, want observed max", got)
	}
	// Interior quantiles stay inside [min, max] even though bucket
	// upper bounds are powers of two.
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := multi.Quantile(q)
		if got < 10*time.Nanosecond || got > 1000*time.Nanosecond {
			t.Errorf("Quantile(%v) = %v outside [10ns, 1000ns]", q, got)
		}
	}
	ms := multi.Snapshot()
	if got := ms.Quantile(0); got != 10*time.Nanosecond {
		t.Errorf("snapshot Quantile(0) = %v, want min", got)
	}
	if got := ms.Quantile(1); got != 1000*time.Nanosecond {
		t.Errorf("snapshot Quantile(1) = %v, want max", got)
	}
}

// TestObserveBucketed: folding n observations at once must match n
// individual Observes in count, sum, min/max, and quantiles.
func TestObserveBucketed(t *testing.T) {
	a := newHistogram()
	b := newHistogram()
	for i := 0; i < 5; i++ {
		a.Observe(200 * time.Nanosecond)
	}
	a.Observe(7 * time.Nanosecond)
	b.observeBucketed(200, 5)
	b.observeBucketed(7, 1)
	if a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Fatalf("count/sum mismatch: (%d, %v) vs (%d, %v)", a.Count(), a.Sum(), b.Count(), b.Sum())
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("Quantile(%v): %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
	// Degenerate folds are no-ops.
	before := b.Count()
	b.observeBucketed(100, 0)
	b.observeBucketed(100, -3)
	(*Histogram)(nil).observeBucketed(100, 5)
	if b.Count() != before {
		t.Error("zero/negative-count folds changed the histogram")
	}
}

package obs

import (
	"sort"
	"sync"
)

// DefaultRequestCapacity bounds the slow-request exemplar ring: the
// ring keeps the top-K served requests by duration, so a long-lived
// server holds at most this many request span trees.
const DefaultRequestCapacity = 512

// RequestTrace is one served request's exemplar: trace identity,
// outcome, stage attribution, and the full root span dump.
type RequestTrace struct {
	// TraceID keys the exemplar; /requests?trace=<id> resolves it.
	TraceID string `json:"trace_id"`
	// SpanID is the server-side root span's ID within the trace.
	SpanID string `json:"span_id,omitempty"`
	// ParentID is the remote caller's span ID when the request carried
	// a traceparent header.
	ParentID string `json:"parent_span_id,omitempty"`
	// Name labels the root span ("request").
	Name string `json:"name"`
	// Source mirrors the HTTP response: "store", "computed", or
	// "rejected".
	Source string `json:"source,omitempty"`
	// Status is the explanation status ("ok", "degraded", "failed").
	Status string `json:"status,omitempty"`
	// Flush is the warm-flush sequence number that served the request
	// (0 for store hits); it joins the request to the shared flush span
	// in the recorder's trace.
	Flush int `json:"flush,omitempty"`
	// DurMS is the request's wall latency in milliseconds.
	DurMS float64 `json:"dur_ms"`
	// Stages is the request's latency attribution.
	Stages StageBreakdown `json:"stages"`
	// Root is the request's full span dump (omitted in ring listings).
	Root *SpanDump `json:"root,omitempty"`
}

// requestRing keeps the top-K slowest requests seen so far, retrievable
// by trace ID. When two entries share a trace ID (a batch call fans one
// trace into several per-tuple requests) the slowest wins.
type requestRing struct {
	mu      sync.Mutex
	cap     int
	entries []RequestTrace
	byID    map[string]int // trace ID -> index in entries
}

// newRequestRing builds a ring holding at most capacity entries
// (DefaultRequestCapacity when capacity <= 0).
func newRequestRing(capacity int) *requestRing {
	if capacity <= 0 {
		capacity = DefaultRequestCapacity
	}
	return &requestRing{cap: capacity, byID: make(map[string]int)}
}

// offer inserts rt if it ranks among the top-K by duration. The scan
// for the current minimum is O(cap); with the default capacity that is
// a few hundred comparisons per served request, well below the cost of
// the request itself.
func (g *requestRing) offer(rt RequestTrace) {
	if g == nil || rt.TraceID == "" {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if i, ok := g.byID[rt.TraceID]; ok {
		if rt.DurMS >= g.entries[i].DurMS {
			g.entries[i] = rt
		}
		return
	}
	if len(g.entries) < g.cap {
		g.byID[rt.TraceID] = len(g.entries)
		g.entries = append(g.entries, rt)
		return
	}
	min := 0
	for i := 1; i < len(g.entries); i++ {
		if g.entries[i].DurMS < g.entries[min].DurMS {
			min = i
		}
	}
	if rt.DurMS <= g.entries[min].DurMS {
		return
	}
	delete(g.byID, g.entries[min].TraceID)
	g.entries[min] = rt
	g.byID[rt.TraceID] = min
}

// byTrace returns the entry for a trace ID.
func (g *requestRing) byTrace(traceID string) (RequestTrace, bool) {
	if g == nil {
		return RequestTrace{}, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if i, ok := g.byID[traceID]; ok {
		return g.entries[i], true
	}
	return RequestTrace{}, false
}

// snapshot returns the ring's entries sorted slowest-first. When
// withRoots is false the span dumps are stripped, keeping listings
// light.
func (g *requestRing) snapshot(withRoots bool) []RequestTrace {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	out := make([]RequestTrace, len(g.entries))
	copy(out, g.entries)
	g.mu.Unlock()
	if !withRoots {
		for i := range out {
			out[i].Root = nil
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].DurMS > out[j].DurMS })
	return out
}

// OfferRequest submits a served request to the slow-request exemplar
// ring; it is kept if it ranks among the top-K by latency. Nil-safe.
func (r *Recorder) OfferRequest(rt RequestTrace) {
	if r == nil {
		return
	}
	r.requests.offer(rt)
}

// RequestByTrace resolves a trace ID to its ring entry, full span dump
// included. Nil-safe.
func (r *Recorder) RequestByTrace(traceID string) (RequestTrace, bool) {
	if r == nil {
		return RequestTrace{}, false
	}
	return r.requests.byTrace(traceID)
}

// Requests lists the ring's exemplars slowest-first, span dumps
// included. Nil-safe.
func (r *Recorder) Requests() []RequestTrace {
	if r == nil {
		return nil
	}
	return r.requests.snapshot(true)
}

// RequestsSummary is the /requests listing: ring occupancy plus the
// exemplars slowest-first, span dumps stripped (resolve an individual
// trace ID for the full dump).
type RequestsSummary struct {
	// Capacity is the ring's bound.
	Capacity int `json:"capacity"`
	// Count is the current number of exemplars.
	Count int `json:"count"`
	// Requests holds the exemplars, slowest first, without Root.
	Requests []RequestTrace `json:"requests"`
}

// RequestsSummary snapshots the ring for the /requests listing.
// Nil-safe.
func (r *Recorder) RequestsSummary() RequestsSummary {
	if r == nil {
		return RequestsSummary{Requests: []RequestTrace{}}
	}
	entries := r.requests.snapshot(false)
	if entries == nil {
		entries = []RequestTrace{}
	}
	return RequestsSummary{Capacity: r.requests.cap, Count: len(entries), Requests: entries}
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"testing"
)

func TestEventLogOrderAndFields(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Type: EventPoolBuild, Tuple: -1, Itemsets: 7, Fresh: 700})
	r.Emit(Event{Type: EventTupleExplained, Tuple: 0, Explainer: "LIME", Itemset: "{age=3}", Pooled: 80, Fresh: 20})
	r.Emit(Event{Type: EventTupleExplained, Tuple: 1, Explainer: "LIME", Fresh: 100})

	events, dropped := r.Events()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.TMS < 0 {
			t.Errorf("event %d has negative t_ms %v", i, e.TMS)
		}
	}
	if events[0].Type != EventPoolBuild || events[0].Tuple != -1 || events[0].Itemsets != 7 {
		t.Errorf("pool_build event %+v", events[0])
	}
	if events[1].Itemset != "{age=3}" || events[1].Pooled != 80 {
		t.Errorf("tuple_explained event %+v", events[1])
	}
}

func TestEventLogBoundedCapacityDrops(t *testing.T) {
	r := NewRecorder()
	r.SetEventCapacity(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Type: EventTupleExplained, Tuple: i})
	}
	events, dropped := r.Events()
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if r.EventsDropped() != 6 {
		t.Fatalf("EventsDropped = %d, want 6", r.EventsDropped())
	}
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	// The newest events survive, in emission order, with global seqs.
	for i, e := range events {
		if want := 6 + i; e.Tuple != want || e.Seq != int64(want) {
			t.Errorf("retained[%d] = tuple %d seq %d, want %d", i, e.Tuple, e.Seq, want)
		}
	}
}

func TestEventLogJSONL(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Type: EventTupleExplained, Tuple: 0, Explainer: "SHAP", Pooled: 3})
	r.Emit(Event{Type: EventCacheEvict, Tuple: -1})

	var buf bytes.Buffer
	if err := r.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q not JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines", len(lines))
	}
	// Tuple index 0 must stay visible (no omitempty on the field), and
	// unset optional fields must marshal away.
	if v, ok := lines[0]["tuple"]; !ok || v.(float64) != 0 {
		t.Errorf("first line lost tuple index 0: %v", lines[0])
	}
	if _, ok := lines[0]["fresh_samples"]; ok {
		t.Errorf("zero fresh_samples should be omitted: %v", lines[0])
	}
	if lines[1]["type"] != string(EventCacheEvict) || lines[1]["tuple"].(float64) != -1 {
		t.Errorf("second line %v", lines[1])
	}
}

func TestEventLogNilSafety(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Type: EventPoolBuild})
	r.SetEventCapacity(2)
	events, dropped := r.Events()
	if events != nil || dropped != 0 {
		t.Fatalf("nil recorder events = %v, %d", events, dropped)
	}
	if r.EventsDropped() != 0 {
		t.Fatal("nil recorder should report 0 drops")
	}
	if err := r.WriteEvents(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestEventLogConcurrent hammers Emit from many goroutines with live
// snapshot readers; under -race it proves the log is goroutine-safe,
// and retained + dropped must account for every emission.
func TestEventLogConcurrent(t *testing.T) {
	r := NewRecorder()
	r.SetEventCapacity(64)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(Event{Type: EventTupleExplained, Tuple: w*per + i})
				if i%100 == 0 {
					r.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	events, dropped := r.Events()
	if got := int64(len(events)) + dropped; got != workers*per {
		t.Fatalf("retained %d + dropped %d = %d, want %d", len(events), dropped, got, workers*per)
	}
	if len(events) != 64 {
		t.Fatalf("retained %d, want capacity 64", len(events))
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"time"
)

// LedgerSchemaVersion stamps every ledger so future readers can detect
// old artifacts. Version 2 added the SLO table; version 3 the runtime
// telemetry and hotpath benchmark sections; readers accept 1..3.
const LedgerSchemaVersion = 3

// EnvFingerprint pins the environment a ledger was produced on, so a
// regression diff can tell an algorithmic change from a hardware or
// toolchain change.
type EnvFingerprint struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GitCommit string `json:"git_commit,omitempty"`
	GitDirty  bool   `json:"git_dirty,omitempty"`
}

// Fingerprint captures the current environment. The git commit comes
// from the binary's embedded build info when available (test binaries
// and `go run` builds may not carry it).
func Fingerprint() EnvFingerprint {
	fp := EnvFingerprint{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				fp.GitCommit = s.Value
			case "vcs.modified":
				fp.GitDirty = s.Value == "true"
			}
		}
	}
	return fp
}

// RunLedger is the persistent, machine-readable artifact of one run:
// everything needed to diff two runs lands in a single canonical JSON
// document (BENCH_<name>.json by convention). Config, Report, and
// Tables are schema-free slots — the bench layer fills them with its
// own JSON-marshaling types; after a round-trip through ReadLedger they
// come back as generic JSON values.
type RunLedger struct {
	Schema int            `json:"schema"`
	Name   string         `json:"name"`
	Env    EnvFingerprint `json:"env"`
	// WallMS is the end-to-end wall time of the run being ledgered.
	WallMS float64 `json:"wall_ms"`
	Config any     `json:"config,omitempty"`
	Report any     `json:"report,omitempty"`
	// Metrics is the recorder snapshot: counters (the invocation
	// ledger), gauges, and stage histograms with p50/p95/p99.
	Metrics       Metrics            `json:"metrics"`
	StageTotalsMS map[string]float64 `json:"stage_totals_ms"`
	Tables        []any              `json:"tables,omitempty"`
	// SLO is the rolling-window objective evaluation at ledger time,
	// present when the run's recorder had an SLO tracker attached
	// (schema ≥ 2). CompareLedgers gates on per-objective compliance.
	SLO *SLOStatus `json:"slo,omitempty"`
	// Runtime is the runtime telemetry summary, present when the run's
	// recorder had a RuntimeSampler attached (schema ≥ 3).
	// CompareLedgers gates on the GC CPU fraction when the baseline
	// carries it.
	Runtime *RuntimeStatus `json:"runtime,omitempty"`
	// Benchmarks holds the hotpath micro-benchmark results (schema ≥ 3);
	// the caller attaches them (see the bench layer's hotpath harness).
	// CompareLedgers gates allocs/op and bytes/op per benchmark when the
	// baseline carries them.
	Benchmarks    []BenchmarkResult `json:"benchmarks,omitempty"`
	EventsDropped int64             `json:"events_dropped"`
}

// BenchmarkResult is one hotpath micro-benchmark measurement: the
// -benchmem triple for a //shahin:hotpath-tagged function, recorded
// into the ledger so allocation regressions gate like invocation
// counts.
type BenchmarkResult struct {
	// Name identifies the function, conventionally "pkg.Func".
	Name string `json:"name"`
	// Runs is the iteration count the harness settled on.
	Runs int `json:"runs"`
	// NsPerOp, AllocsPerOp, and BytesPerOp mirror testing.BenchmarkResult.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Ledger snapshots the recorder into a new RunLedger: environment
// fingerprint, metric snapshot, per-stage wall-time totals, and the
// event-log drop count. The caller attaches Config, Report, and Tables.
// Returns an empty (but valid) ledger on a nil receiver.
func (r *Recorder) Ledger(name string) *RunLedger {
	l := &RunLedger{
		Schema:        LedgerSchemaVersion,
		Name:          name,
		Env:           Fingerprint(),
		StageTotalsMS: map[string]float64{},
	}
	if r == nil {
		l.Metrics = (*Recorder)(nil).Metrics()
		return l
	}
	l.Metrics = r.Metrics()
	l.WallMS = r.sinceStartMS()
	for stage, d := range r.StageTotals() {
		l.StageTotalsMS[stage] = float64(d) / float64(time.Millisecond)
	}
	if st, ok := r.SLOStatus(); ok {
		l.SLO = &st
	}
	if rt, ok := r.RuntimeStatus(); ok {
		l.Runtime = &rt
	}
	l.EventsDropped = r.EventsDropped()
	return l
}

// ReuseRatio derives the ledger's reuse ratio from its well-known
// counters: reused / (reused + invocations), 0 with no traffic (or on
// a nil ledger).
func (l *RunLedger) ReuseRatio() float64 {
	if l == nil {
		return 0
	}
	reused := float64(l.Metrics.Counters[CounterReusedSamples])
	inv := float64(l.Metrics.Counters[CounterInvocations])
	if reused+inv == 0 {
		return 0
	}
	return reused / (reused + inv)
}

// WriteLedger writes the ledger as canonical indented JSON (map keys
// sorted by encoding/json, two-space indent, trailing newline).
func WriteLedger(w io.Writer, l *RunLedger) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

// ReadLedger parses a ledger written by WriteLedger, rejecting
// documents without the ledger schema stamp.
func ReadLedger(rd io.Reader) (*RunLedger, error) {
	var l RunLedger
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&l); err != nil {
		return nil, fmt.Errorf("obs: parsing ledger: %w", err)
	}
	if l.Schema < 1 || l.Schema > LedgerSchemaVersion {
		return nil, fmt.Errorf("obs: ledger schema %d not supported (want 1..%d)", l.Schema, LedgerSchemaVersion)
	}
	return &l, nil
}

// Thresholds configures when a ledger diff counts as a regression.
// Invocations and Wall are allowed fractional increases (0 means any
// increase regresses — right for deterministic invocation counts);
// Reuse is the allowed absolute drop in the reuse ratio; SLO the
// allowed absolute drop in per-objective SLO compliance (gated only
// when the baseline ledger carries an SLO table, so schema-1 baselines
// keep comparing cleanly). AllocsPerOp and BytesPerOp are allowed
// fractional increases per hotpath benchmark, and GCCPU the allowed
// absolute increase in the GC CPU fraction — both gated only when the
// baseline carries the corresponding schema-3 section, so older
// baselines keep comparing cleanly too.
type Thresholds struct {
	Invocations float64
	Wall        float64
	Reuse       float64
	SLO         float64
	AllocsPerOp float64
	BytesPerOp  float64
	GCCPU       float64
}

// Delta is one row of a ledger diff.
type Delta struct {
	Metric    string  `json:"metric"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	Diff      float64 `json:"diff"`
	Gated     bool    `json:"gated"`
	Regressed bool    `json:"regressed"`
}

// CompareLedgers diffs two ledgers — prev (the baseline) against curr
// (the fresh run): every counter appearing in either, plus the derived
// reuse ratio and the wall time. The three gated
// metrics — classifier invocations, reuse ratio, wall time — are
// checked against the thresholds; the returned flag reports whether any
// regressed.
func CompareLedgers(prev, curr *RunLedger, th Thresholds) ([]Delta, bool) {
	names := make([]string, 0, len(prev.Metrics.Counters)+len(curr.Metrics.Counters))
	seen := map[string]bool{}
	for name := range prev.Metrics.Counters {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for name := range curr.Metrics.Counters {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var deltas []Delta
	regressed := false
	for _, name := range names {
		d := Delta{
			Metric: name,
			Old:    float64(prev.Metrics.Counters[name]),
			New:    float64(curr.Metrics.Counters[name]),
		}
		d.Diff = d.New - d.Old
		if name == CounterInvocations {
			d.Gated = true
			d.Regressed = exceedsFraction(d.Old, d.New, th.Invocations)
		}
		regressed = regressed || d.Regressed
		deltas = append(deltas, d)
	}

	reuse := Delta{Metric: "reuse_ratio", Old: prev.ReuseRatio(), New: curr.ReuseRatio(), Gated: true}
	reuse.Diff = reuse.New - reuse.Old
	reuse.Regressed = reuse.Old-reuse.New > th.Reuse
	regressed = regressed || reuse.Regressed
	deltas = append(deltas, reuse)

	wall := Delta{Metric: "wall_ms", Old: prev.WallMS, New: curr.WallMS, Gated: true}
	wall.Diff = wall.New - wall.Old
	wall.Regressed = exceedsFraction(wall.Old, wall.New, th.Wall)
	regressed = regressed || wall.Regressed
	deltas = append(deltas, wall)

	if prev.SLO != nil {
		currObjs := sloByName(curr.SLO)
		for _, old := range prev.SLO.Objectives {
			d := Delta{Metric: "slo_compliance_" + old.Name, Old: old.Compliance, Gated: true}
			if now, ok := currObjs[old.Name]; ok {
				d.New = now.Compliance
				d.Regressed = d.Old-d.New > th.SLO
			} else {
				// The fresh run dropped an objective the baseline
				// tracked — that is a regression, not a skip.
				d.Regressed = true
			}
			d.Diff = d.New - d.Old
			regressed = regressed || d.Regressed
			deltas = append(deltas, d)
		}
	}

	// Hotpath benchmark gates (schema ≥ 3): allocs/op and bytes/op per
	// benchmark the baseline carries, each with a small absolute slack
	// (one alloc, a cache line of bytes) so a toolchain whose escape
	// analysis differs by a single allocation does not trip an exact
	// gate. ns/op rides along ungated — micro-benchmark wall time is as
	// noisy as run wall time. A benchmark the fresh run dropped is a
	// regression, like a dropped SLO objective.
	if len(prev.Benchmarks) > 0 {
		currBench := map[string]BenchmarkResult{}
		for _, b := range curr.Benchmarks {
			currBench[b.Name] = b
		}
		for _, old := range prev.Benchmarks {
			now, ok := currBench[old.Name]
			alloc := Delta{Metric: "bench_" + old.Name + "_allocs_per_op", Old: float64(old.AllocsPerOp), Gated: true}
			bytesD := Delta{Metric: "bench_" + old.Name + "_bytes_per_op", Old: float64(old.BytesPerOp), Gated: true}
			nsD := Delta{Metric: "bench_" + old.Name + "_ns_per_op", Old: old.NsPerOp}
			if ok {
				alloc.New = float64(now.AllocsPerOp)
				alloc.Regressed = exceedsWithSlack(alloc.Old, alloc.New, th.AllocsPerOp, 1)
				bytesD.New = float64(now.BytesPerOp)
				bytesD.Regressed = exceedsWithSlack(bytesD.Old, bytesD.New, th.BytesPerOp, 64)
				nsD.New = now.NsPerOp
			} else {
				alloc.Regressed = true
				bytesD.Regressed = true
			}
			for _, d := range []Delta{alloc, bytesD, nsD} {
				d.Diff = d.New - d.Old
				regressed = regressed || d.Regressed
				deltas = append(deltas, d)
			}
		}
	}

	// GC CPU gate (schema ≥ 3): an absolute increase in the fraction of
	// CPU the collector ate, gated when the baseline sampled it. A fresh
	// run without a runtime section against a baseline with one is a
	// regression — the sampler went missing.
	if prev.Runtime != nil {
		d := Delta{Metric: "gc_cpu_fraction", Old: prev.Runtime.GCCPUFraction, Gated: true}
		if curr.Runtime != nil {
			d.New = curr.Runtime.GCCPUFraction
			d.Regressed = d.New-d.Old > th.GCCPU
		} else {
			d.Regressed = true
		}
		d.Diff = d.New - d.Old
		regressed = regressed || d.Regressed
		deltas = append(deltas, d)
	}

	return deltas, regressed
}

// exceedsWithSlack reports whether curr exceeds prev by more than the
// allowed fractional increase, after granting a small absolute slack
// (so a zero-alloc baseline tolerates measurement jitter of a single
// allocation rather than regressing on any nonzero reading).
func exceedsWithSlack(prev, curr, allowedFrac, absSlack float64) bool {
	if curr <= prev+absSlack {
		return false
	}
	if prev == 0 {
		return true
	}
	return (curr-prev)/prev > allowedFrac
}

// sloByName indexes a status's objectives (empty map on nil).
func sloByName(st *SLOStatus) map[string]SLOObjective {
	out := map[string]SLOObjective{}
	if st == nil {
		return out
	}
	for _, o := range st.Objectives {
		out[o.Name] = o
	}
	return out
}

// exceedsFraction reports whether curr exceeds prev by more than the
// allowed fractional increase.
func exceedsFraction(prev, curr, allowed float64) bool {
	if curr <= prev {
		return false
	}
	if prev == 0 {
		return true
	}
	return (curr-prev)/prev > allowed
}

// Package obs is the observability substrate of the explanation
// pipeline: stage-scoped spans with nested timings, an atomic
// counter/gauge registry, log-scale latency histograms, and an opt-in
// HTTP endpoint serving /metrics, /progress, /trace, and /debug/pprof.
// It is stdlib-only and safe for concurrent use.
//
// Everything is nil-receiver-safe: a nil *Recorder — and the nil
// *Counter, *Gauge, *Histogram, and *Span values it hands out — turns
// the entire instrumentation surface into no-ops, so pipeline code
// instruments unconditionally and a run without a recorder pays nothing
// beyond a nil check.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span names the pipeline emits. Batch runs produce a "batch" root with
// "mine", "pool-build" (nesting "pre-label"), and "explain" children;
// streaming runs produce a long-lived "stream" root that grows one
// "re-mine" child per itemset recomputation.
const (
	StageBatch      = "batch"
	StageStream     = "stream"
	StageSequential = "sequential"
	StageGreedy     = "greedy"
	StageMine       = "mine"
	StagePoolBuild  = "pool-build"
	StagePreLabel   = "pre-label"
	StageExplain    = "explain"
	StageRemine     = "re-mine"
	// StageWarmFlush is one flush of the warm (serving) variant: a
	// micro-batch explained against the persistent pool, nesting "mine",
	// "pool-build", and "explain" children when a re-mine fires.
	StageWarmFlush = "warm-flush"
)

// Well-known metric names. The pipeline maintains these; Progress reads
// them back to answer /progress.
const (
	// CounterTuplesDone counts explanations completed so far.
	CounterTuplesDone = "tuples_done"
	// CounterInvocations counts classifier Predict calls, including
	// pool pre-labelling.
	CounterInvocations = "classifier_invocations"
	// CounterPoolInvocations counts the Predict calls spent labelling
	// pooled perturbations up front.
	CounterPoolInvocations = "pool_invocations"
	// CounterReusedSamples counts pooled samples served in place of
	// fresh classifier calls.
	CounterReusedSamples = "reused_samples"
	// CounterCacheHits / Misses / Evictions mirror the perturbation
	// repository's activity.
	CounterCacheHits      = "cache_hits"
	CounterCacheMisses    = "cache_misses"
	CounterCacheEvictions = "cache_evictions"
	// GaugeTuplesTotal is the batch size when known up front (0 for an
	// unbounded stream).
	GaugeTuplesTotal = "tuples_total"
	// HistPredict is the latency distribution of classifier Predict
	// calls; HistExplainTuple the per-tuple explanation times.
	HistPredict      = "predict_ns"
	HistExplainTuple = "explain_tuple_ns"

	// Fault-tolerance counters, maintained by internal/fault and the
	// core degradation ladder. CounterFaultsInjected / CounterFaultOutages
	// count injected chaos faults; CounterRetries counts backend
	// re-attempts; CounterBreakerOpens / CounterBreakerRejected track the
	// circuit breaker; CounterDegradedAnswers counts predictions served
	// from pooled labels or the label cache while the backend was
	// unavailable, and CounterFailedAnswers those with no fallback at all.
	CounterFaultsInjected  = "fault_injected_errors"
	CounterFaultOutages    = "fault_outage_errors"
	CounterRetries         = "fault_retries"
	CounterBreakerOpens    = "fault_breaker_opens"
	CounterBreakerRejected = "fault_breaker_rejected"
	CounterDegradedAnswers = "fault_degraded_answers"
	CounterFailedAnswers   = "fault_failed_answers"

	// Serving-layer metrics, maintained by internal/serve.
	// CounterServeRequests counts tuples admitted to the queue;
	// CounterServeStoreHits those answered straight from the warm
	// explanation store; CounterServeFlushes completed flushes;
	// CounterServeTimeouts requests whose deadline expired while queued;
	// CounterServeRejected requests refused at admission (queue full or
	// server draining). GaugeServeQueueDepth is the current queue depth.
	// HistServeFlushSize records tuples per flush (unitless, stored as
	// nanosecond buckets); HistServeWait time spent queued before a flush
	// picked the request up; HistServeRequest end-to-end request latency.
	CounterServeRequests  = "serve_requests"
	CounterServeStoreHits = "serve_store_hits"
	CounterServeFlushes   = "serve_flushes"
	CounterServeTimeouts  = "serve_timeouts"
	CounterServeRejected  = "serve_rejected"
	GaugeServeQueueDepth  = "serve_queue_depth"
	HistServeFlushSize    = "serve_flush_size"
	HistServeWait         = "serve_wait_ns"
	HistServeRequest      = "serve_request_ns"

	// Occupancy gauges, set by the owning layer so scrapes see current
	// state rather than having to replay the event log.
	// GaugeWarmPooledItemsets is the number of itemsets currently
	// holding materialised perturbations in a Warm explainer's pool;
	// GaugeServeStoreSize the explanations held by the serving store;
	// GaugeBreakerState the circuit breaker's state encoded 0 = closed,
	// 1 = open, 2 = half-open.
	GaugeWarmPooledItemsets = "warm_pooled_itemsets"
	GaugeServeStoreSize     = "serve_store_size"
	GaugeBreakerState       = "fault_breaker_state"

	// Router-tier metrics, maintained by internal/router.
	// CounterRouterRequests counts requests accepted by the front tier;
	// CounterRouterFailovers forwards re-routed to a fallback ring node
	// after the affinity replica failed or was open;
	// CounterRouterShed requests refused at admission with 429 because
	// the in-flight bound was reached; CounterRouterUnrouted requests
	// for which every replica in the failover sequence failed (returned
	// as 503, never dropped). HistRouterRequest is the end-to-end
	// router-side request latency. Per-replica health rides gauges named
	// GaugeReplicaUpPrefix + the replica name (1 healthy, 0 unhealthy)
	// next to the per-replica breaker-state gauges (GaugeBreakerState +
	// "_" + name).
	CounterRouterRequests  = "router_requests"
	CounterRouterFailovers = "router_failovers"
	CounterRouterShed      = "router_shed"
	CounterRouterUnrouted  = "router_unrouted"
	HistRouterRequest      = "router_request_ns"
	GaugeReplicaUpPrefix   = "router_replica_up_"
)

// Recorder collects spans, counters, gauges, and histograms from a run
// (or several runs — counters accumulate). All methods are safe for
// concurrent use and safe on a nil receiver.
type Recorder struct {
	start    time.Time
	events   *eventLog
	requests *requestRing

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []*Span
	slo      *SLOTracker
	// runtime is the attached telemetry sampler (nil when none);
	// runtimeStatus/runtimeSeen retain its last summary past Stop so
	// ledgers built after the run still carry the runtime section.
	runtime       *RuntimeSampler
	runtimeStatus RuntimeStatus
	runtimeSeen   bool
}

// NewRecorder returns an empty recorder; its uptime clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{
		start:    time.Now(),
		events:   &eventLog{cap: DefaultEventCapacity},
		requests: newRequestRing(0),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// sinceStartMS returns milliseconds since the recorder's epoch.
func (r *Recorder) sinceStartMS() float64 {
	if r == nil {
		return 0
	}
	return float64(time.Since(r.start)) / float64(time.Millisecond)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Counter returns the named counter, creating it on first use. Returns
// nil (whose methods no-op) on a nil receiver. Resolve once outside hot
// loops: the lookup takes a read lock.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe
// like Counter.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil-safe like Counter.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Metrics is a point-in-time JSON-friendly snapshot of every registered
// counter, gauge, and histogram.
type Metrics struct {
	UptimeMS   float64                      `json:"uptime_ms"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Metrics snapshots the registry (zero value on a nil receiver).
func (r *Recorder) Metrics() Metrics {
	m := Metrics{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return m
	}
	m.UptimeMS = float64(time.Since(r.start)) / float64(time.Millisecond)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		m.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		m.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		m.Histograms[name] = h.Snapshot()
	}
	return m
}

// Progress is the live view of a run: how far along it is and how well
// reuse is working. TuplesTotal is 0 when the workload is unbounded
// (streaming).
type Progress struct {
	TuplesDone     int64   `json:"tuples_done"`
	TuplesTotal    int64   `json:"tuples_total"`
	Invocations    int64   `json:"invocations"`
	ReusedSamples  int64   `json:"reused_samples"`
	ReuseRate      float64 `json:"reuse_rate"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
	// ExplainP50MS/P95MS/P99MS are the per-tuple explanation latency
	// quantiles so far (bucket-resolution estimates).
	ExplainP50MS float64 `json:"explain_p50_ms"`
	ExplainP95MS float64 `json:"explain_p95_ms"`
	ExplainP99MS float64 `json:"explain_p99_ms"`
	UptimeMS     float64 `json:"uptime_ms"`
}

// Progress reads the well-known counters back into a Progress snapshot
// (zero value on a nil receiver).
func (r *Recorder) Progress() Progress {
	if r == nil {
		return Progress{}
	}
	p := Progress{
		TuplesDone:     r.Counter(CounterTuplesDone).Value(),
		TuplesTotal:    r.Gauge(GaugeTuplesTotal).Value(),
		Invocations:    r.Counter(CounterInvocations).Value(),
		ReusedSamples:  r.Counter(CounterReusedSamples).Value(),
		CacheHits:      r.Counter(CounterCacheHits).Value(),
		CacheMisses:    r.Counter(CounterCacheMisses).Value(),
		CacheEvictions: r.Counter(CounterCacheEvictions).Value(),
		UptimeMS:       float64(time.Since(r.start)) / float64(time.Millisecond),
	}
	if total := p.ReusedSamples + p.Invocations; total > 0 {
		p.ReuseRate = float64(p.ReusedSamples) / float64(total)
	}
	h := r.Histogram(HistExplainTuple)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	p.ExplainP50MS = ms(h.Quantile(0.50))
	p.ExplainP95MS = ms(h.Quantile(0.95))
	p.ExplainP99MS = ms(h.Quantile(0.99))
	return p
}

// FormatStageTotals renders a StageTotals map as a single line, longest
// stage first ("explain 2.1s · pre-label 340ms · mine 12ms").
func FormatStageTotals(totals map[string]time.Duration) string {
	if len(totals) == 0 {
		return "(no spans recorded)"
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]] != totals[names[j]] {
			return totals[names[i]] > totals[names[j]]
		}
		return names[i] < names[j]
	})
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s %s", name, totals[name].Round(time.Microsecond))
	}
	return strings.Join(parts, " · ")
}

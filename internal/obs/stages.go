package obs

import (
	"encoding/json"
	"time"
)

// Per-request latency-attribution stage names, as they appear in span
// dumps, stage histograms, and JSON breakdowns. Together the five
// stages account for (nearly all of) a served request's wall latency:
// queue_wait and batch_assembly are charged by the serving layer,
// pool_sample / classify / solve by the core explainer.
const (
	// StageQueueWait is time spent in the admission queue before the
	// micro-batcher picked the request's flush up.
	StageQueueWait = "queue_wait"
	// StageBatchAssembly is shared flush machinery amortised over the
	// batch: mining/re-mining, pool builds, and batch-mates' work that
	// overlapped this request's residence in the flush.
	StageBatchAssembly = "batch_assembly"
	// StagePoolSample is time retrieving pooled perturbation samples
	// for this tuple.
	StagePoolSample = "pool_sample"
	// StageClassify is cumulative in-classifier time for this tuple's
	// Predict calls, fault-chain retries included.
	StageClassify = "classify"
	// StageSolve is the remainder of the tuple's explanation time:
	// the solver/aggregation work around sampling and classification.
	StageSolve = "solve"
)

// Histogram names for the per-stage latency distributions (nanosecond
// observations, one per request per non-zero stage).
const (
	// HistStageQueueWait is the distribution of StageQueueWait.
	HistStageQueueWait = "stage_queue_wait_ns"
	// HistStageBatchAssembly is the distribution of StageBatchAssembly.
	HistStageBatchAssembly = "stage_batch_assembly_ns"
	// HistStagePoolSample is the distribution of StagePoolSample.
	HistStagePoolSample = "stage_pool_sample_ns"
	// HistStageClassify is the distribution of StageClassify.
	HistStageClassify = "stage_classify_ns"
	// HistStageSolve is the distribution of StageSolve.
	HistStageSolve = "stage_solve_ns"
)

// StageBreakdown is one request's latency attribution: how its wall
// time divides across the serving stages. Zero fields mean the stage
// did not occur (a store hit has only Solve; a request that timed out
// in the queue has only QueueWait). It marshals as milliseconds so HTTP
// clients and ledgers read it directly.
type StageBreakdown struct {
	// QueueWait — see StageQueueWait.
	QueueWait time.Duration
	// BatchAssembly — see StageBatchAssembly.
	BatchAssembly time.Duration
	// PoolSample — see StagePoolSample.
	PoolSample time.Duration
	// Classify — see StageClassify.
	Classify time.Duration
	// Solve — see StageSolve.
	Solve time.Duration
}

// Total sums the attributed stages; comparing it to wall latency gives
// the attribution coverage ratio the serving benchmark asserts on.
func (b StageBreakdown) Total() time.Duration {
	return b.QueueWait + b.BatchAssembly + b.PoolSample + b.Classify + b.Solve
}

// IsZero reports whether no stage was attributed.
func (b StageBreakdown) IsZero() bool {
	return b == StageBreakdown{}
}

// stageBreakdownJSON is the wire shape: stage milliseconds.
type stageBreakdownJSON struct {
	QueueWaitMS     float64 `json:"queue_wait_ms"`
	BatchAssemblyMS float64 `json:"batch_assembly_ms"`
	PoolSampleMS    float64 `json:"pool_sample_ms"`
	ClassifyMS      float64 `json:"classify_ms"`
	SolveMS         float64 `json:"solve_ms"`
}

// durToMS converts for the wire shape.
func durToMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// msToDur converts from the wire shape.
func msToDur(ms float64) time.Duration { return time.Duration(ms * float64(time.Millisecond)) }

// MarshalJSON renders the breakdown as per-stage milliseconds.
func (b StageBreakdown) MarshalJSON() ([]byte, error) {
	return json.Marshal(stageBreakdownJSON{
		QueueWaitMS:     durToMS(b.QueueWait),
		BatchAssemblyMS: durToMS(b.BatchAssembly),
		PoolSampleMS:    durToMS(b.PoolSample),
		ClassifyMS:      durToMS(b.Classify),
		SolveMS:         durToMS(b.Solve),
	})
}

// UnmarshalJSON parses the per-stage-milliseconds wire shape.
func (b *StageBreakdown) UnmarshalJSON(data []byte) error {
	var w stageBreakdownJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*b = StageBreakdown{
		QueueWait:     msToDur(w.QueueWaitMS),
		BatchAssembly: msToDur(w.BatchAssemblyMS),
		PoolSample:    msToDur(w.PoolSampleMS),
		Classify:      msToDur(w.ClassifyMS),
		Solve:         msToDur(w.SolveMS),
	}
	return nil
}

// ObserveStages records each non-zero stage of a breakdown into its
// stage histogram. The serving layer calls it with the queue stages,
// the core explainer with the per-tuple stages, so no stage is double
// counted. Nil-safe.
func (r *Recorder) ObserveStages(b StageBreakdown) {
	if r == nil {
		return
	}
	if b.QueueWait > 0 {
		r.Histogram(HistStageQueueWait).Observe(b.QueueWait)
	}
	if b.BatchAssembly > 0 {
		r.Histogram(HistStageBatchAssembly).Observe(b.BatchAssembly)
	}
	if b.PoolSample > 0 {
		r.Histogram(HistStagePoolSample).Observe(b.PoolSample)
	}
	if b.Classify > 0 {
		r.Histogram(HistStageClassify).Observe(b.Classify)
	}
	if b.Solve > 0 {
		r.Histogram(HistStageSolve).Observe(b.Solve)
	}
}

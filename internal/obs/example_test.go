package obs_test

import (
	"fmt"

	"shahin/internal/obs"
)

// ExampleCompareLedgers diffs a fresh run ledger against a committed
// baseline the way the CI smoke job does: invocation counts may grow at
// most 5%, the reuse ratio may drop at most 0.01 absolute. Here the
// fresh run spends 10% more classifier calls and loses 0.02 reuse, so
// both gated metrics regress.
func ExampleCompareLedgers() {
	baseline := &obs.RunLedger{Metrics: obs.Metrics{Counters: map[string]int64{
		obs.CounterInvocations:   1000,
		obs.CounterReusedSamples: 4000,
	}}}
	fresh := &obs.RunLedger{Metrics: obs.Metrics{Counters: map[string]int64{
		obs.CounterInvocations:   1100,
		obs.CounterReusedSamples: 3900,
	}}}
	th := obs.Thresholds{Invocations: 0.05, Reuse: 0.01, Wall: 0.5}

	deltas, regressed := obs.CompareLedgers(baseline, fresh, th)
	for _, d := range deltas {
		if d.Gated {
			fmt.Printf("%s: %.2f -> %.2f regressed=%v\n", d.Metric, d.Old, d.New, d.Regressed)
		}
	}
	fmt.Println("ledger regressed:", regressed)
	// Output:
	// classifier_invocations: 1000.00 -> 1100.00 regressed=true
	// reuse_ratio: 0.80 -> 0.78 regressed=true
	// wall_ms: 0.00 -> 0.00 regressed=false
	// ledger regressed: true
}

// ExampleRecorder_Emit records one structured provenance event and
// reads it back. The event log is a bounded ring — Events also reports
// how many older entries the capacity bound dropped.
func ExampleRecorder_Emit() {
	rec := obs.NewRecorder()
	rec.Emit(obs.Event{
		Type:      obs.EventTupleExplained,
		Tuple:     7,
		Explainer: "lime",
		Itemset:   "{education=HS, sex=M}",
		Pooled:    250,
		Fresh:     50,
	})

	events, dropped := rec.Events()
	e := events[0]
	fmt.Printf("%d event(s), %d dropped\n", len(events), dropped)
	fmt.Printf("%s tuple=%d pooled=%d fresh=%d via %s\n", e.Type, e.Tuple, e.Pooled, e.Fresh, e.Itemset)
	// Output:
	// 1 event(s), 0 dropped
	// tuple_explained tuple=7 pooled=250 fresh=50 via {education=HS, sex=M}
}

package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavour): complete events (`ph:"X"`) with microsecond
// timestamps, plus flow events (`ph:"s"`/`ph:"f"`) tying a request's
// track to the shared flush that served it, loadable in Perfetto /
// chrome://tracing.
type ChromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // start, microseconds from recorder epoch
	Dur  float64 `json:"dur"` // duration, microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	// ID binds a flow's start and finish events; trace-ID-keyed.
	ID string `json:"id,omitempty"`
	// BP is the flow binding point ("e" = enclosing slice).
	BP string `json:"bp,omitempty"`
	// S is the scope of an instant event (`ph:"i"`): "p" = process.
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// attrInt reads a numeric span attribute regardless of how it was
// stored (int in memory, float64 after a JSON round trip).
func attrInt(attrs map[string]any, key string) (int, bool) {
	switch v := attrs[key].(type) {
	case int:
		return v, true
	case int64:
		return int(v), true
	case float64:
		return int(v), true
	}
	return 0, false
}

// ChromeTrace converts the recorded span forest into Chrome trace
// events: each root span and its descendants share one tid (so nested
// stages render as a flame on that track), events are sorted by start
// time within each tid, and span attributes ride along as args. The
// slow-request exemplar ring follows on additional tracks, one per
// request, and each request that went through a flush is tied to that
// flush's span with a trace-ID-keyed flow arrow, so a request's journey
// across queue, batch, and pool renders as one connected story. Nil
// recorders return an empty slice.
func (r *Recorder) ChromeTrace() []ChromeEvent {
	if r == nil {
		return []ChromeEvent{}
	}
	events := []ChromeEvent{}
	// flushTracks maps a warm-flush sequence number to the track and
	// start of its root span, so request flow arrows can land on it.
	type flushMark struct {
		tid int
		ts  float64
	}
	flushTracks := map[int]flushMark{}
	var walk func(d *SpanDump, tid int)
	walk = func(d *SpanDump, tid int) {
		ev := ChromeEvent{
			Name: d.Name,
			Cat:  "shahin",
			Ph:   "X",
			TS:   d.StartMS * 1000,
			Dur:  d.DurMS * 1000,
			PID:  1,
			TID:  tid,
		}
		if len(d.Attrs) > 0 || d.InFlight || d.TraceID != "" {
			ev.Args = make(map[string]any, len(d.Attrs)+2)
			for k, v := range d.Attrs {
				ev.Args[k] = v
			}
			if d.InFlight {
				ev.Args["in_flight"] = true
			}
			if d.TraceID != "" {
				ev.Args["trace_id"] = d.TraceID
			}
		}
		events = append(events, ev)
		for _, c := range d.Children {
			walk(c, tid)
		}
	}
	tid := 0
	for _, root := range r.Trace() {
		tid++
		if root.Name == StageWarmFlush {
			if n, ok := attrInt(root.Attrs, "flush"); ok {
				flushTracks[n] = flushMark{tid: tid, ts: root.StartMS * 1000}
			}
		}
		walk(root, tid)
	}
	flows := []ChromeEvent{}
	for _, rt := range r.Requests() {
		if rt.Root == nil {
			continue
		}
		tid++
		walk(rt.Root, tid)
		mark, ok := flushTracks[rt.Flush]
		if rt.Flush == 0 || !ok {
			continue
		}
		flows = append(flows,
			ChromeEvent{
				Name: "request-flush", Cat: "shahin-flow", Ph: "s",
				TS: rt.Root.StartMS * 1000, PID: 1, TID: tid, ID: rt.TraceID,
			},
			ChromeEvent{
				Name: "request-flush", Cat: "shahin-flow", Ph: "f", BP: "e",
				TS: mark.ts, PID: 1, TID: mark.tid, ID: rt.TraceID,
			},
		)
	}
	// Runtime telemetry rides on track 0: heap_sample events become
	// counter tracks (live heap, goroutines) and gc_cycle events
	// process-scoped instants, so GC activity lines up visually against
	// the request and flush spans above.
	runtimeEvents, _ := r.Events()
	for _, e := range runtimeEvents {
		switch e.Type {
		case EventHeapSample:
			events = append(events,
				ChromeEvent{
					Name: "heap_live_bytes", Cat: "shahin-runtime", Ph: "C",
					TS: e.TMS * 1000, PID: 1, TID: 0,
					Args: map[string]any{"bytes": e.Bytes},
				},
				ChromeEvent{
					Name: "goroutines", Cat: "shahin-runtime", Ph: "C",
					TS: e.TMS * 1000, PID: 1, TID: 0,
					Args: map[string]any{"count": e.Goroutines},
				},
			)
		case EventGCCycle:
			events = append(events, ChromeEvent{
				Name: "gc_cycle", Cat: "shahin-runtime", Ph: "i", S: "p",
				TS: e.TMS * 1000, PID: 1, TID: 0,
				Args: map[string]any{
					"cycles":       e.Itemsets,
					"heap_bytes":   e.Bytes,
					"max_pause_ms": e.DurMS,
				},
			})
		}
	}
	// The trace viewer expects monotone timestamps per track; sibling
	// spans are recorded in start order but clock rounding can tie, so
	// sort explicitly (stable: preserves parent-before-child on ties).
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].TS < events[j].TS
	})
	// Flow pairs ride at the end, start before finish, so binding order
	// survives the per-track sort above.
	return append(events, flows...)
}

// WriteChromeTrace writes the span forest in the Chrome trace-event
// JSON array format. A nil recorder writes an empty array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.ChromeTrace())
}

package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavour): a complete event (`ph:"X"`) with microsecond
// timestamps, loadable in Perfetto / chrome://tracing.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // start, microseconds from recorder epoch
	Dur  float64        `json:"dur"` // duration, microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace converts the recorded span forest into Chrome trace
// events: each root span and its descendants share one tid (so nested
// stages render as a flame on that track), events are sorted by start
// time within each tid, and span attributes ride along as args. Nil
// recorders return an empty slice.
func (r *Recorder) ChromeTrace() []ChromeEvent {
	if r == nil {
		return []ChromeEvent{}
	}
	events := []ChromeEvent{}
	var walk func(d *SpanDump, tid int)
	walk = func(d *SpanDump, tid int) {
		ev := ChromeEvent{
			Name: d.Name,
			Cat:  "shahin",
			Ph:   "X",
			TS:   d.StartMS * 1000,
			Dur:  d.DurMS * 1000,
			PID:  1,
			TID:  tid,
		}
		if len(d.Attrs) > 0 || d.InFlight {
			ev.Args = make(map[string]any, len(d.Attrs)+1)
			for k, v := range d.Attrs {
				ev.Args[k] = v
			}
			if d.InFlight {
				ev.Args["in_flight"] = true
			}
		}
		events = append(events, ev)
		for _, c := range d.Children {
			walk(c, tid)
		}
	}
	for i, root := range r.Trace() {
		walk(root, i+1)
	}
	// The trace viewer expects monotone timestamps per track; sibling
	// spans are recorded in start order but clock rounding can tie, so
	// sort explicitly (stable: preserves parent-before-child on ties).
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].TS < events[j].TS
	})
	return events
}

// WriteChromeTrace writes the span forest in the Chrome trace-event
// JSON array format. A nil recorder writes an empty array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.ChromeTrace())
}

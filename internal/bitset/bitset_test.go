package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || s.Len() != 0 {
		t.Fatalf("empty set: Count=%d Len=%d", s.Count(), s.Len())
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count=%d want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count=%d want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Set(-1)":   func() { s.Set(-1) },
		"Set(10)":   func() { s.Set(10) },
		"Test(10)":  func() { s.Test(10) },
		"Clear(10)": func() { s.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("AndCount with mismatched capacities did not panic")
		}
	}()
	AndCount(a, b)
}

func TestIndicesAndForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 100, 199}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices len=%d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestAndOrClone(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(50)
	a.Set(99)
	b.Set(50)
	b.Set(99)
	b.Set(2)

	and := And(a, b)
	if got := and.Indices(); len(got) != 2 || got[0] != 50 || got[1] != 99 {
		t.Fatalf("And = %v", got)
	}
	if got := AndCount(a, b); got != 2 {
		t.Fatalf("AndCount = %d want 2", got)
	}
	or := Or(a, b)
	if got := or.Count(); got != 4 {
		t.Fatalf("Or count = %d want 4", got)
	}

	c := a.Clone()
	c.Clear(1)
	if !a.Test(1) {
		t.Fatal("Clone is not independent")
	}
}

func TestIntersectIntoAliasing(t *testing.T) {
	a, b := New(64), New(64)
	a.Set(5)
	a.Set(6)
	b.Set(6)
	IntersectInto(a, a, b) // dst aliases a
	if a.Test(5) || !a.Test(6) {
		t.Fatalf("aliased IntersectInto wrong: %v", a.Indices())
	}
}

func TestString(t *testing.T) {
	s := New(8)
	s.Set(1)
	s.Set(3)
	if got := s.String(); got != "{1 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: Count equals the number of distinct indices inserted.
func TestQuickCountMatchesDistinct(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		distinct := map[uint16]bool{}
		for _, i := range idx {
			s.Set(int(i))
			distinct[i] = true
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AndCount(a,b) == And(a,b).Count() and intersection is
// commutative.
func TestQuickAndCommutes(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := New(1<<16), New(1<<16)
		for _, i := range xs {
			a.Set(int(i))
		}
		for _, i := range ys {
			b.Set(int(i))
		}
		n1 := AndCount(a, b)
		n2 := AndCount(b, a)
		return n1 == n2 && n1 == And(a, b).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits exactly the set bits, in ascending order.
func TestQuickForEachAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		s := New(n)
		want := map[int]bool{}
		for k := 0; k < rng.Intn(64); k++ {
			i := rng.Intn(n)
			s.Set(i)
			want[i] = true
		}
		prev := -1
		seen := 0
		s.ForEach(func(i int) {
			if i <= prev {
				t.Fatalf("ForEach not ascending: %d after %d", i, prev)
			}
			if !want[i] {
				t.Fatalf("ForEach visited unset bit %d", i)
			}
			prev = i
			seen++
		})
		if seen != len(want) {
			t.Fatalf("ForEach visited %d bits want %d", seen, len(want))
		}
	}
}

func BenchmarkAndCount(b *testing.B) {
	a, c := New(1<<20), New(1<<20)
	for i := 0; i < 1<<20; i += 3 {
		a.Set(i)
	}
	for i := 0; i < 1<<20; i += 5 {
		c.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCount(a, c)
	}
}

// Package bitset provides a dense, fixed-capacity bitmap used as a
// transaction-id list during frequent itemset mining. Support counting for
// an itemset reduces to intersecting the bitmaps of its items and counting
// the surviving bits, which is the hot loop of the Apriori miner.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitmap. The zero value is unusable; create one
// with New. Bits beyond the capacity passed to New are never set, so
// Count and intersection results are exact.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a Set able to hold bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Set(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Clear(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Test(%d) out of range [0,%d)", i, s.n))
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// IntersectInto stores a AND b into dst. All three sets must share the same
// capacity; dst may alias a or b. It returns dst.
func IntersectInto(dst, a, b *Set) *Set {
	if a.n != b.n || dst.n != a.n {
		panic("bitset: IntersectInto capacity mismatch")
	}
	for i := range dst.words {
		dst.words[i] = a.words[i] & b.words[i]
	}
	return dst
}

// And returns a new set holding a AND b.
func And(a, b *Set) *Set {
	return IntersectInto(New(a.n), a, b)
}

// AndCount returns the population count of a AND b without allocating.
func AndCount(a, b *Set) int {
	if a.n != b.n {
		panic("bitset: AndCount capacity mismatch")
	}
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w & b.words[i])
	}
	return c
}

// Or returns a new set holding a OR b.
func Or(a, b *Set) *Set {
	if a.n != b.n {
		panic("bitset: Or capacity mismatch")
	}
	out := New(a.n)
	for i := range out.words {
		out.words[i] = a.words[i] | b.words[i]
	}
	return out
}

// ForEach calls fn with the index of every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*wordBits + tz)
			w &= w - 1
		}
	}
}

// Indices returns the indices of all set bits in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as a compact list of indices, for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// Package mab implements the KL-LUCB multi-armed-bandit procedure Anchor
// uses to estimate rule precisions with as few classifier invocations as
// possible (Kaufmann & Kalyanakrishnan, "Information complexity in bandit
// subset selection", COLT 2013 — the algorithm the Anchor paper adopts).
//
// Arms are Bernoulli: pulling an arm draws perturbations consistent with a
// candidate rule, invokes the classifier, and counts how many predictions
// match the target class. The package provides the two primitives Anchor
// needs: selecting the top-n arms by mean with (ε, δ) guarantees, and
// deciding whether a single arm's mean clears a threshold.
package mab

import (
	"fmt"
	"math"
)

// Arm is a Bernoulli arm. Pull performs n trials and returns the number of
// successes. Implementations are expected to be stateless between calls
// (successes are accumulated by this package).
type Arm interface {
	Pull(n int) int
}

// Counts tracks the empirical state of one arm.
type Counts struct {
	Pulls     int
	Successes int
}

// Mean returns the empirical success rate (0 when never pulled).
func (c Counts) Mean() float64 {
	if c.Pulls == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Pulls)
}

// klBernoulli returns KL(p‖q) for Bernoulli distributions, handling the
// boundary cases exactly.
func klBernoulli(p, q float64) float64 {
	const eps = 1e-15
	p = math.Min(math.Max(p, eps), 1-eps)
	q = math.Min(math.Max(q, eps), 1-eps)
	return p*math.Log(p/q) + (1-p)*math.Log((1-p)/(1-q))
}

// UpperBound returns the KL upper confidence bound: the largest q >= mean
// with n·KL(mean‖q) <= beta, found by bisection.
func UpperBound(mean float64, n int, beta float64) float64 {
	if n == 0 {
		return 1
	}
	lo, hi := mean, 1.0
	level := beta / float64(n)
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if klBernoulli(mean, mid) > level {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// LowerBound returns the KL lower confidence bound: the smallest q <= mean
// with n·KL(mean‖q) <= beta.
func LowerBound(mean float64, n int, beta float64) float64 {
	if n == 0 {
		return 0
	}
	lo, hi := 0.0, mean
	level := beta / float64(n)
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if klBernoulli(mean, mid) > level {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// beta is the exploration rate from the KL-LUCB paper (theorem 1 with
// k1 = 405.5, alpha = 1.1), as used in the Anchor reference code.
func beta(nArms, round int, delta float64) float64 {
	alpha := 1.1
	k1 := 405.5
	t := float64(round)
	if t < 1 {
		t = 1
	}
	return math.Log(k1 * float64(nArms) * math.Pow(t, alpha) / delta)
}

// Config bounds a bandit run.
type Config struct {
	Eps       float64 // required gap tolerance between selected and rejected arms
	Delta     float64 // failure probability
	Batch     int     // pulls per round per queried arm (amortises Pull overhead)
	InitPulls int     // pulls given to every arm up front
	MaxPulls  int     // hard budget across all arms; 0 means a generous default

	// Prior seeds per-arm counts accumulated elsewhere (e.g. Shahin's
	// shared precision cache); arms whose prior already has InitPulls
	// samples skip the initial pull round. Must be nil or len(arms).
	Prior []Counts
}

func (c *Config) fill() Config {
	out := *c
	if out.Eps <= 0 {
		out.Eps = 0.1
	}
	if out.Delta <= 0 {
		out.Delta = 0.05
	}
	if out.Batch <= 0 {
		out.Batch = 10
	}
	if out.InitPulls <= 0 {
		out.InitPulls = out.Batch
	}
	if out.MaxPulls <= 0 {
		out.MaxPulls = 100000
	}
	return out
}

// TopN runs KL-LUCB to identify the n arms with the highest means, up to
// tolerance eps with confidence 1-delta. It returns the selected arm
// indices (ordered by descending empirical mean) and the per-arm counts
// accumulated during the run. If n >= len(arms), all arms are returned
// after the initial pulls.
func TopN(arms []Arm, n int, cfg Config) ([]int, []Counts, error) {
	if len(arms) == 0 {
		return nil, nil, fmt.Errorf("mab: TopN with no arms")
	}
	if n <= 0 {
		return nil, nil, fmt.Errorf("mab: TopN n=%d must be positive", n)
	}
	c := cfg.fill()
	if c.Prior != nil && len(c.Prior) != len(arms) {
		return nil, nil, fmt.Errorf("mab: %d priors for %d arms", len(c.Prior), len(arms))
	}
	counts := make([]Counts, len(arms))
	if c.Prior != nil {
		copy(counts, c.Prior)
	}
	totalPulls := 0
	pull := func(i, k int) {
		counts[i].Successes += arms[i].Pull(k)
		counts[i].Pulls += k
		totalPulls += k
	}
	for i := range arms {
		if need := c.InitPulls - counts[i].Pulls; need > 0 {
			pull(i, need)
		}
	}
	if n >= len(arms) {
		return rankByMean(counts, len(arms)), counts, nil
	}

	round := 1
	for totalPulls < c.MaxPulls {
		b := beta(len(arms), round, c.Delta)
		// Partition arms into the current top-n (J) and the rest; find the
		// weakest member of J (lowest LB) and the strongest outsider
		// (highest UB).
		order := rankByMean(counts, len(counts))
		worstIn, bestOut := -1, -1
		var worstLB, bestUB float64
		for rank, i := range order {
			mean := counts[i].Mean()
			if rank < n {
				lb := LowerBound(mean, counts[i].Pulls, b)
				if worstIn == -1 || lb < worstLB {
					worstIn, worstLB = i, lb
				}
			} else {
				ub := UpperBound(mean, counts[i].Pulls, b)
				if bestOut == -1 || ub > bestUB {
					bestOut, bestUB = i, ub
				}
			}
		}
		if bestUB-worstLB <= c.Eps {
			return order[:n], counts, nil
		}
		pull(worstIn, c.Batch)
		pull(bestOut, c.Batch)
		round++
	}
	// Budget exhausted: return the current empirical best. This mirrors
	// the anytime behaviour of the reference implementation.
	return rankByMean(counts, len(counts))[:n], counts, nil
}

// rankByMean returns arm indices ordered by descending empirical mean
// (stable by index for ties). Only the full ordering of the first k is
// guaranteed meaningful to callers.
func rankByMean(counts []Counts, k int) []int {
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: arm lists are small (beam width × candidates).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if counts[b].Mean() > counts[a].Mean() {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order[:k]
}

// AboveThreshold decides whether an arm's true mean exceeds tau, pulling
// until the (1-delta) confidence interval clears tau on one side or the
// interval is narrower than eps. It returns the decision, the final
// counts, and whether the decision is confident (false when the budget ran
// out with tau inside the interval).
func AboveThreshold(arm Arm, tau float64, cfg Config) (above, confident bool, counts Counts) {
	c := cfg.fill()
	pull := func(k int) {
		counts.Successes += arm.Pull(k)
		counts.Pulls += k
	}
	pull(c.InitPulls)
	round := 1
	for counts.Pulls < c.MaxPulls {
		b := beta(1, round, c.Delta)
		mean := counts.Mean()
		lb := LowerBound(mean, counts.Pulls, b)
		ub := UpperBound(mean, counts.Pulls, b)
		if lb > tau {
			return true, true, counts
		}
		if ub < tau {
			return false, true, counts
		}
		if ub-lb < c.Eps {
			return mean >= tau, true, counts
		}
		pull(c.Batch)
		round++
	}
	return counts.Mean() >= tau, false, counts
}

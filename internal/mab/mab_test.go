package mab

import (
	"math"
	"math/rand"
	"testing"
)

// bern is a test arm with a fixed success probability.
type bern struct {
	p   float64
	rng *rand.Rand
}

func (b *bern) Pull(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if b.rng.Float64() < b.p {
			s++
		}
	}
	return s
}

func arms(rng *rand.Rand, ps ...float64) []Arm {
	out := make([]Arm, len(ps))
	for i, p := range ps {
		out[i] = &bern{p: p, rng: rng}
	}
	return out
}

func TestKLBernoulliBasics(t *testing.T) {
	if got := klBernoulli(0.5, 0.5); got > 1e-12 {
		t.Fatalf("KL(p,p)=%g want 0", got)
	}
	if klBernoulli(0.9, 0.1) <= 0 {
		t.Fatal("KL of distinct distributions should be positive")
	}
	// Boundary inputs must not produce NaN/Inf.
	for _, pq := range [][2]float64{{0, 0.5}, {1, 0.5}, {0.5, 0}, {0.5, 1}, {0, 1}} {
		if v := klBernoulli(pq[0], pq[1]); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("KL(%g,%g)=%g", pq[0], pq[1], v)
		}
	}
}

func TestBoundsBracketMean(t *testing.T) {
	for _, mean := range []float64{0, 0.1, 0.5, 0.9, 1} {
		for _, n := range []int{1, 10, 100, 10000} {
			ub := UpperBound(mean, n, 2)
			lb := LowerBound(mean, n, 2)
			if lb > mean || ub < mean {
				t.Fatalf("mean=%g n=%d: bounds [%g, %g] don't bracket", mean, n, lb, ub)
			}
			if lb < 0 || ub > 1 {
				t.Fatalf("bounds outside [0,1]: [%g, %g]", lb, ub)
			}
		}
	}
}

func TestBoundsTightenWithSamples(t *testing.T) {
	w10 := UpperBound(0.5, 10, 2) - LowerBound(0.5, 10, 2)
	w1000 := UpperBound(0.5, 1000, 2) - LowerBound(0.5, 1000, 2)
	if w1000 >= w10 {
		t.Fatalf("interval did not tighten: %g -> %g", w10, w1000)
	}
}

func TestBoundsZeroPulls(t *testing.T) {
	if UpperBound(0.3, 0, 2) != 1 || LowerBound(0.3, 0, 2) != 0 {
		t.Fatal("zero-pull bounds must be vacuous")
	}
}

func TestCountsMean(t *testing.T) {
	if (Counts{}).Mean() != 0 {
		t.Fatal("empty counts mean should be 0")
	}
	if got := (Counts{Pulls: 4, Successes: 3}).Mean(); got != 0.75 {
		t.Fatalf("Mean=%g", got)
	}
}

func TestTopNErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := TopN(nil, 1, Config{}); err == nil {
		t.Fatal("TopN with no arms should fail")
	}
	if _, _, err := TopN(arms(rng, 0.5), 0, Config{}); err == nil {
		t.Fatal("TopN with n=0 should fail")
	}
}

func TestTopNAllArms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sel, counts, err := TopN(arms(rng, 0.2, 0.8), 5, Config{InitPulls: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d arms want 2", len(sel))
	}
	for i := range counts {
		if counts[i].Pulls != 20 {
			t.Fatalf("arm %d pulled %d times want 20", i, counts[i].Pulls)
		}
	}
}

func TestTopNFindsBestArm(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := arms(rng, 0.1, 0.9, 0.3, 0.5)
		sel, _, err := TopN(a, 1, Config{Eps: 0.05, Delta: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if sel[0] != 1 {
			t.Fatalf("seed %d: selected arm %d want 1", seed, sel[0])
		}
	}
}

func TestTopNFindsTopTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := arms(rng, 0.15, 0.85, 0.7, 0.2, 0.05)
	sel, _, err := TopN(a, 2, Config{Eps: 0.05, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{sel[0]: true, sel[1]: true}
	if !got[1] || !got[2] {
		t.Fatalf("selected %v want {1,2}", sel)
	}
}

func TestTopNAdaptiveSampling(t *testing.T) {
	// Easily separable arms should receive far fewer pulls than the
	// hard-budget maximum: the bandit's whole purpose.
	rng := rand.New(rand.NewSource(4))
	a := arms(rng, 0.05, 0.95, 0.1, 0.08)
	_, counts, err := TopN(a, 1, Config{Eps: 0.1, Delta: 0.05, MaxPulls: 100000})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c.Pulls
	}
	if total > 5000 {
		t.Fatalf("separable arms used %d pulls; bandit not adaptive", total)
	}
}

func TestTopNBudgetExhaustion(t *testing.T) {
	// Identical arms can never separate; the run must stop at the budget
	// and still return n arms.
	rng := rand.New(rand.NewSource(5))
	a := arms(rng, 0.5, 0.5, 0.5)
	sel, counts, err := TopN(a, 1, Config{Eps: 1e-9, Delta: 1e-9, MaxPulls: 2000, Batch: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 {
		t.Fatalf("selected %d arms", len(sel))
	}
	total := 0
	for _, c := range counts {
		total += c.Pulls
	}
	if total > 2000+2*10 {
		t.Fatalf("budget overrun: %d pulls", total)
	}
}

func TestAboveThresholdClearCases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	above, confident, counts := AboveThreshold(&bern{p: 0.9, rng: rng}, 0.5, Config{})
	if !above || !confident {
		t.Fatalf("p=0.9 vs tau=0.5: above=%v confident=%v", above, confident)
	}
	if counts.Pulls == 0 {
		t.Fatal("no pulls recorded")
	}
	above, confident, _ = AboveThreshold(&bern{p: 0.1, rng: rng}, 0.5, Config{})
	if above || !confident {
		t.Fatalf("p=0.1 vs tau=0.5: above=%v confident=%v", above, confident)
	}
}

func TestAboveThresholdBorderline(t *testing.T) {
	// Mean exactly at tau: must terminate via the eps narrow-interval rule
	// or budget, never loop forever.
	rng := rand.New(rand.NewSource(7))
	_, _, counts := AboveThreshold(&bern{p: 0.5, rng: rng}, 0.5, Config{Eps: 0.05, MaxPulls: 50000})
	if counts.Pulls > 50000+10 {
		t.Fatalf("budget overrun: %d", counts.Pulls)
	}
}

func TestAboveThresholdAdaptive(t *testing.T) {
	// A clear case should need far fewer pulls than a borderline one.
	rng := rand.New(rand.NewSource(8))
	_, _, easy := AboveThreshold(&bern{p: 0.99, rng: rng}, 0.5, Config{})
	_, _, hard := AboveThreshold(&bern{p: 0.55, rng: rng}, 0.5, Config{Eps: 0.01})
	if easy.Pulls >= hard.Pulls {
		t.Fatalf("easy case used %d pulls, hard %d; not adaptive", easy.Pulls, hard.Pulls)
	}
}

func BenchmarkTopN10Arms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		a := arms(rng, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9)
		if _, _, err := TopN(a, 2, Config{Eps: 0.1, Delta: 0.1, MaxPulls: 20000}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTopNWithPrior(t *testing.T) {
	// Arm 1 is clearly best and its prior already proves it; TopN should
	// need far fewer fresh pulls than a cold run.
	coldRng := rand.New(rand.NewSource(30))
	cold := arms(coldRng, 0.3, 0.9, 0.35)
	_, coldCounts, err := TopN(cold, 1, Config{Eps: 0.05, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	coldTotal := 0
	for _, c := range coldCounts {
		coldTotal += c.Pulls
	}

	warmRng := rand.New(rand.NewSource(31))
	warm := arms(warmRng, 0.3, 0.9, 0.35)
	prior := []Counts{
		{Pulls: 400, Successes: 120},
		{Pulls: 400, Successes: 360},
		{Pulls: 400, Successes: 140},
	}
	sel, warmCounts, err := TopN(warm, 1, Config{Eps: 0.05, Delta: 0.05, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 1 {
		t.Fatalf("warm selection=%d want 1", sel[0])
	}
	warmFresh := 0
	for i, c := range warmCounts {
		warmFresh += c.Pulls - prior[i].Pulls
	}
	if warmFresh >= coldTotal {
		t.Fatalf("prior saved nothing: warm fresh=%d cold=%d", warmFresh, coldTotal)
	}
}

func TestTopNPriorLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	_, _, err := TopN(arms(rng, 0.5, 0.6), 1, Config{Prior: []Counts{{}}})
	if err == nil {
		t.Fatal("mismatched prior length accepted")
	}
}

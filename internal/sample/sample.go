// Package sample provides the sampling primitives the rest of the system is
// built on: an alias-method sampler for drawing from categorical frequency
// distributions in O(1), a bounded Zipf sampler used by the synthetic data
// generators, and uniform / reservoir sampling helpers used by the frequent
// itemset miner.
//
// All functions take an explicit *rand.Rand so that every experiment in the
// repository is reproducible from a seed.
package sample

import (
	"fmt"
	"math"
	"math/rand"
)

// Alias is an alias-method sampler over a fixed discrete distribution.
// Construction is O(k); each Draw is O(1). The zero value is unusable;
// build one with NewAlias.
type Alias struct {
	prob  []float64 // probability of keeping column i (vs. taking alias)
	alias []int32
	pmf   []float64 // normalised input distribution, kept for Prob
}

// NewAlias builds an alias sampler from non-negative weights. It returns an
// error if weights is empty, contains a negative value, or sums to zero.
func NewAlias(weights []float64) (*Alias, error) {
	k := len(weights)
	if k == 0 {
		return nil, fmt.Errorf("sample: NewAlias with empty weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sample: NewAlias weight %d is negative (%g)", i, w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("sample: NewAlias weights sum to zero")
	}

	a := &Alias{
		prob:  make([]float64, k),
		alias: make([]int32, k),
		pmf:   make([]float64, k),
	}
	// Vose's algorithm: partition scaled probabilities into small/large
	// worklists and pair each small column with probability mass from a
	// large one.
	scaled := make([]float64, k)
	small := make([]int32, 0, k)
	large := make([]int32, 0, k)
	for i, w := range weights {
		p := w / total
		a.pmf[i] = p
		scaled[i] = p * float64(k)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are all (approximately) 1.
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a, nil
}

// MustAlias is NewAlias but panics on error; for static tables.
func MustAlias(weights []float64) *Alias {
	a, err := NewAlias(weights)
	if err != nil {
		panic(err)
	}
	return a
}

// K returns the number of categories.
func (a *Alias) K() int { return len(a.prob) }

// Prob returns the normalised probability of category i.
func (a *Alias) Prob(i int) float64 { return a.pmf[i] }

// Draw samples a category index according to the distribution.
func (a *Alias) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Zipf draws from a bounded Zipf(s) distribution over {0..k-1}, where rank
// r has weight 1/(r+1)^s. It is implemented on top of Alias so draws are
// O(1); use it to give synthetic categorical attributes the heavy-tailed
// marginals real datasets exhibit.
type Zipf struct{ a *Alias }

// NewZipf builds a bounded Zipf sampler with k categories and exponent s.
// s = 0 is uniform; larger s is more skewed.
func NewZipf(k int, s float64) (*Zipf, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sample: NewZipf k=%d must be positive", k)
	}
	if s < 0 {
		return nil, fmt.Errorf("sample: NewZipf s=%g must be non-negative", s)
	}
	w := make([]float64, k)
	for r := range w {
		w[r] = 1 / math.Pow(float64(r+1), s)
	}
	a, err := NewAlias(w)
	if err != nil {
		return nil, err
	}
	return &Zipf{a: a}, nil
}

// Draw samples a rank in [0, k).
func (z *Zipf) Draw(rng *rand.Rand) int { return z.a.Draw(rng) }

// Prob returns the probability of rank r.
func (z *Zipf) Prob(r int) float64 { return z.a.Prob(r) }

// K returns the number of ranks.
func (z *Zipf) K() int { return z.a.K() }

// UniformIndices returns n distinct indices drawn uniformly from [0, total),
// in random order. If n >= total it returns the full permuted range. It is
// the batch sampler behind the paper's "uniform random sample of
// max(1000, 1% of batch)" heuristic.
func UniformIndices(rng *rand.Rand, total, n int) []int {
	if total < 0 {
		panic("sample: UniformIndices negative total")
	}
	if n >= total {
		out := rng.Perm(total)
		return out
	}
	if n <= 0 {
		return nil
	}
	// Partial Fisher-Yates over a lazily materialised permutation.
	swapped := make(map[int]int, n*2)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(total-i)
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		swapped[j] = vi
		swapped[i] = vj
	}
	return out
}

// Reservoir maintains a uniform sample of size k over a stream of items.
// It backs the streaming variant's itemset re-mining.
type Reservoir[T any] struct {
	items []T
	k     int
	seen  int
	rng   *rand.Rand
}

// NewReservoir creates a reservoir of capacity k fed by rng.
func NewReservoir[T any](k int, rng *rand.Rand) *Reservoir[T] {
	if k <= 0 {
		panic("sample: NewReservoir k must be positive")
	}
	return &Reservoir[T]{items: make([]T, 0, k), k: k, rng: rng}
}

// Add offers one stream element to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.k {
		r.items[j] = item
	}
}

// Seen returns how many elements have been offered.
func (r *Reservoir[T]) Seen() int { return r.seen }

// Items returns the current sample. The returned slice is owned by the
// reservoir; callers must not modify it.
func (r *Reservoir[T]) Items() []T { return r.items }

// Reset empties the reservoir without reallocating.
func (r *Reservoir[T]) Reset() {
	r.items = r.items[:0]
	r.seen = 0
}

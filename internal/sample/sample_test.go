package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAliasErrors(t *testing.T) {
	cases := map[string][]float64{
		"empty":    {},
		"negative": {1, -0.5, 2},
		"all-zero": {0, 0, 0},
	}
	for name, w := range cases {
		if _, err := NewAlias(w); err == nil {
			t.Errorf("NewAlias(%s) expected error", name)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a := MustAlias([]float64{7})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if a.Draw(rng) != 0 {
			t.Fatal("single-category alias drew non-zero")
		}
	}
	if a.Prob(0) != 1 {
		t.Fatalf("Prob(0)=%g want 1", a.Prob(0))
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a := MustAlias([]float64{1, 0, 3})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		if a.Draw(rng) == 1 {
			t.Fatal("drew a zero-weight category")
		}
	}
}

// Empirical frequencies should converge to the normalised weights.
func TestAliasFrequencies(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := MustAlias(weights)
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Draw(rng)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d: freq=%.4f want %.4f", i, got, want)
		}
		if math.Abs(a.Prob(i)-want) > 1e-12 {
			t.Errorf("Prob(%d)=%g want %g", i, a.Prob(i), want)
		}
	}
}

// Property: for any positive weight vector, probabilities sum to 1 and all
// draws are in range.
func TestQuickAliasValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		any := false
		for i, r := range raw {
			w[i] = float64(r)
			if r > 0 {
				any = true
			}
		}
		if !any {
			w[0] = 1
		}
		a, err := NewAlias(w)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := 0; i < a.K(); i++ {
			sum += a.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for i := 0; i < 50; i++ {
			d := a.Draw(rng)
			if d < 0 || d >= a.K() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0,1) expected error")
	}
	if _, err := NewZipf(5, -1); err == nil {
		t.Error("NewZipf(5,-1) expected error")
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(10, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Probabilities must be strictly decreasing in rank.
	for r := 1; r < z.K(); r++ {
		if z.Prob(r) >= z.Prob(r-1) {
			t.Fatalf("Zipf probs not decreasing at rank %d", r)
		}
	}
	// s=0 must be uniform.
	u, err := NewZipf(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if math.Abs(u.Prob(r)-0.25) > 1e-12 {
			t.Fatalf("Zipf(s=0) Prob(%d)=%g want 0.25", r, u.Prob(r))
		}
	}
}

func TestUniformIndicesDistinctAndInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ total, n int }{
		{100, 10}, {100, 100}, {100, 150}, {1, 1}, {5, 0},
	} {
		got := UniformIndices(rng, tc.total, tc.n)
		wantLen := tc.n
		if wantLen > tc.total {
			wantLen = tc.total
		}
		if len(got) != wantLen {
			t.Fatalf("total=%d n=%d: len=%d want %d", tc.total, tc.n, len(got), wantLen)
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= tc.total {
				t.Fatalf("index %d out of range [0,%d)", i, tc.total)
			}
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
		}
	}
}

// Each element should appear in the sample with probability n/total.
func TestUniformIndicesUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const total, n, trials = 20, 5, 20000
	counts := make([]int, total)
	for trial := 0; trial < trials; trial++ {
		for _, i := range UniformIndices(rng, total, n) {
			counts[i]++
		}
	}
	want := float64(n) / total
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("element %d: inclusion freq %.3f want %.3f", i, got, want)
		}
	}
}

func TestReservoirBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewReservoir[int](3, rng)
	for i := 0; i < 2; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 2 || r.Seen() != 2 {
		t.Fatalf("reservoir below capacity: items=%v seen=%d", r.Items(), r.Seen())
	}
	for i := 2; i < 100; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 3 {
		t.Fatalf("reservoir over capacity holds %d items", len(r.Items()))
	}
	r.Reset()
	if len(r.Items()) != 0 || r.Seen() != 0 {
		t.Fatal("Reset did not clear reservoir")
	}
}

// Property: after many streams, each of N elements is retained with
// probability k/N.
func TestReservoirUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const N, k, trials = 10, 3, 30000
	counts := make([]int, N)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](k, rng)
		for i := 0; i < N; i++ {
			r.Add(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	want := float64(k) / N
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("element %d retained with freq %.3f want %.3f", i, got, want)
		}
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	w := make([]float64, 1000)
	for i := range w {
		w[i] = float64(i + 1)
	}
	a := MustAlias(w)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Draw(rng)
	}
}

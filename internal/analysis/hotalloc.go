package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-alloc contract on functions tagged with a
//
//	//shahin:hotpath
//
// directive in their doc comment: the perturbation and solve inner
// loops whose steady-state allocation behaviour the reuse guarantees
// (and the benchmarks) depend on. Inside a tagged function the
// analyzer flags the escaping-allocation patterns that regress
// silently:
//
//   - fmt.Sprintf / Sprint / Sprintln / Errorf (always allocate);
//   - append calls in a loop whose destination is not provably
//     pre-sized in the same function (3-index make or full slice
//     expression) — loop membership comes from the CFG's cycles, so
//     goto-formed loops count;
//   - interface boxing: a concrete value passed to an interface-typed
//     parameter or assigned to an interface-typed variable;
//   - function literals in a loop that capture outer variables (the
//     closure, and often the captured variable, escape per iteration).
//
// One-time set-up allocations (make with explicit size, struct
// construction) are deliberately permitted: the contract is "no
// allocation per iteration that the compiler cannot elide", not "no
// allocation ever". A tagged function that must break one rule keeps a
// //shahinvet:allow hotalloc directive with its reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid escaping allocations (Sprintf, uncapped append, boxing, loop closures) in //shahin:hotpath functions",
	Run:  runHotAlloc,
}

// hotPathDirective is the tag marking a function as allocation-audited.
const hotPathDirective = "//shahin:hotpath"

// fmtAllocators are the fmt functions that always allocate their result.
var fmtAllocators = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

// isHotPath reports whether the declaration carries the hotpath tag in
// its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathDirective {
			return true
		}
	}
	return false
}

// checkHotFunc audits one tagged function.
func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	g := BuildCFG(fd.Body)
	loops := g.LoopBlocks()
	capped := cappedSlices(info, fd.Body)

	for _, blk := range g.ReversePostorder() {
		inLoop := loops[blk]
		for _, n := range blk.Nodes {
			auditHotNode(pass, info, n, inLoop, capped)
		}
	}
}

// auditHotNode audits one CFG node. inLoop selects the loop-only
// checks (uncapped append, capturing closures).
func auditHotNode(pass *Pass, info *types.Info, node ast.Node, inLoop bool, capped map[types.Object]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if inLoop {
				if name := capturedVar(info, n); name != "" {
					pass.Reportf(n.Pos(),
						"closure capturing %s inside a loop on a hot path allocates per iteration; hoist it out of the loop", name)
				}
			}
			return false // literal bodies execute elsewhere
		case *ast.CallExpr:
			auditHotCall(pass, info, n, inLoop, capped)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				lt := info.TypeOf(n.Lhs[i])
				if lt != nil && isInterfaceType(lt) && boxes(info, rhs) {
					pass.Reportf(rhs.Pos(),
						"assignment boxes %s into interface %s on a hot path; keep the value concrete",
						types.ExprString(rhs), lt.String())
				}
			}
		}
		return true
	})
}

// auditHotCall audits one call inside a tagged function.
func auditHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, inLoop bool, capped map[types.Object]bool) {
	if fn, ok := calleeFromPackage(info, call, "fmt"); ok && fmtAllocators[fn.Name()] {
		pass.Reportf(call.Pos(),
			"fmt.%s allocates on a hot path; pre-render outside the loop or drop the formatting", fn.Name())
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(info, id) {
		if inLoop && !appendCapped(info, call, capped) {
			pass.Reportf(call.Pos(),
				"append in a loop on a hot path without a pre-sized destination; make the slice with explicit capacity first")
		}
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil || !isInterfaceType(pt) {
			continue
		}
		if boxes(info, arg) {
			pass.Reportf(arg.Pos(),
				"argument %s boxes into interface %s on a hot path; keep the call monomorphic",
				types.ExprString(arg), pt.String())
		}
	}
}

// isBuiltin reports whether the identifier resolves to a predeclared
// builtin (a shadowing local would resolve to a *types.Var instead).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// isInterfaceType reports whether t's underlying type is an interface
// (any and error included).
func isInterfaceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether passing/assigning e into an interface slot
// allocates: its static type is concrete and it is not the untyped nil.
func boxes(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	if isInterfaceType(tv.Type) {
		return false // interface-to-interface, no new allocation
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// capturedVar returns the name of one outer variable the literal
// captures ("" when it captures nothing). Deterministically the
// earliest-declared capture, for stable diagnostics.
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	var best *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Outside the literal, not package-level.
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level: no per-iteration capture
		}
		if best == nil || v.Pos() < best.Pos() {
			best = v
		}
		return true
	})
	if best == nil {
		return ""
	}
	return best.Name()
}

// cappedSlices collects the local slice variables whose construction
// proves a capacity: 3-index make, or a full slice expression a[x:y:z].
func cappedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := spanObjOf(info, id)
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CallExpr:
				if fid, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok &&
					fid.Name == "make" && isBuiltin(info, fid) && len(rhs.Args) == 3 {
					out[obj] = true
				}
			case *ast.SliceExpr:
				if rhs.Slice3 {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// appendCapped reports whether the append destination is a variable
// proven pre-sized in this function.
func appendCapped(info *types.Info, call *ast.CallExpr, capped map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return true // malformed; the type checker already complained
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	return obj != nil && capped[obj]
}

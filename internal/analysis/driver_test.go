package analysis

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestMainJSONAndExit drives the CLI entry point over the fixture tree
// (which has deliberate violations) and over bogus flags, pinning the
// exit-code contract and the -json output shape.
func TestMainJSONAndExit(t *testing.T) {
	fixtures := filepath.Join("testdata", "src")

	var out, errBuf bytes.Buffer
	code := Main([]string{"-dir", fixtures, "-json", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("Main over violating fixtures: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	var diags []Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output is empty despite non-zero exit")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		return diags[i].Line < diags[j].Line
	}) {
		t.Error("diagnostics are not sorted by file and line")
	}
	seen := make(map[string]bool)
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	for _, an := range All() {
		if !seen[an.Name] {
			t.Errorf("full run over fixtures produced no %s findings", an.Name)
		}
	}

	// Text mode agrees with JSON mode on the finding count.
	out.Reset()
	if code := Main([]string{"-dir", fixtures, "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("text-mode exit %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(diags) {
		t.Errorf("text mode printed %d findings, JSON had %d", len(lines), len(diags))
	}

	// -run selects a subset.
	out.Reset()
	if code := Main([]string{"-dir", fixtures, "-run", "walltime", "-json", "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("-run walltime exit %d, want 1", code)
	}
	var subset []Diagnostic
	if err := json.Unmarshal(out.Bytes(), &subset); err != nil {
		t.Fatal(err)
	}
	for _, d := range subset {
		if d.Analyzer != "walltime" {
			t.Errorf("-run walltime leaked a %s finding", d.Analyzer)
		}
	}

	// -tests pulls in in-package _test.go files: the planted violation
	// in errcheck/extra_test.go appears only with the flag.
	out.Reset()
	if code := Main([]string{"-dir", fixtures, "-tests", "-run", "errcheck", "-json", "./errcheck"}, &out, &errBuf); code != 1 {
		t.Fatalf("-tests exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	var withTests []Diagnostic
	if err := json.Unmarshal(out.Bytes(), &withTests); err != nil {
		t.Fatal(err)
	}
	testFileHit := false
	for _, d := range withTests {
		if strings.HasSuffix(d.File, "_test.go") {
			testFileHit = true
		}
	}
	if !testFileHit {
		t.Error("-tests produced no finding from a _test.go file")
	}
	out.Reset()
	if code := Main([]string{"-dir", fixtures, "-run", "errcheck", "-json", "./errcheck"}, &out, &errBuf); code != 1 {
		t.Fatalf("default errcheck run exit %d, want 1", code)
	}
	var withoutTests []Diagnostic
	if err := json.Unmarshal(out.Bytes(), &withoutTests); err != nil {
		t.Fatal(err)
	}
	for _, d := range withoutTests {
		if strings.HasSuffix(d.File, "_test.go") {
			t.Errorf("default run leaked a test-file finding: %s", d)
		}
	}

	// Usage and load errors exit 2.
	if code := Main([]string{"-run", "nope"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
	if code := Main([]string{"-dir", filepath.Join("testdata", "nosuch")}, &out, &errBuf); code != 2 {
		t.Errorf("missing module: exit %d, want 2", code)
	}

	// -list exits 0 and names every analyzer.
	out.Reset()
	if code := Main([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Errorf("-list exit %d, want 0", code)
	}
	for _, an := range All() {
		if !strings.Contains(out.String(), an.Name) {
			t.Errorf("-list output missing %s", an.Name)
		}
	}
}

// TestPatternExpansion pins the package-pattern grammar against the
// fixture tree.
func TestPatternExpansion(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"), "")
	if err != nil {
		t.Fatal(err)
	}
	all, err := loader.Packages([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"detrand", "errcheck", "maporder", "obs", "walltime"} {
		found := false
		for _, p := range all {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("./... missed fixture package %s (got %v)", want, all)
		}
	}
	one, err := loader.Packages([]string{"./obs"})
	if err != nil || len(one) != 1 || one[0] != "obs" {
		t.Errorf("./obs -> (%v, %v), want exactly [obs]", one, err)
	}
	if _, err := loader.Packages([]string{"./nosuch"}); err == nil {
		t.Error("pattern matching a missing package should fail")
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// PkgDoc enforces the repo's documentation contract: every package
// carries a package comment, and every exported identifier — function,
// method on an exported type, type, const, var — carries a doc
// comment. A grouped const/var/type declaration is covered by its
// group doc, and a spec inside a group may instead carry its own doc
// or a trailing line comment (the idiomatic form for enum members).
// Methods on unexported receiver types are exempt: they are invisible
// in godoc unless the type escapes through an exported API, and the
// type's own doc is the right place for that story.
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "require doc comments on the package clause and every exported identifier",
	Run:  runPkgDoc,
}

func runPkgDoc(pass *Pass) {
	files := pass.Pkg.Files
	if len(files) == 0 {
		return
	}
	// The package comment may live in any file of the package; files
	// arrive in sorted filename order, so the report (if any) anchors
	// deterministically at the first file's package clause.
	hasPkgDoc := false
	for _, f := range files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc {
		pass.Reportf(files[0].Name.Pos(),
			"package %s has no package comment; document what the package is for in one of its files",
			files[0].Name.Name)
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
}

// checkFuncDoc flags exported functions, and exported methods on
// exported receiver types, that carry no doc comment.
func checkFuncDoc(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Doc != nil {
		return
	}
	name := fd.Name.Name
	kind := "function"
	if fd.Recv != nil {
		recv := receiverTypeName(fd.Recv)
		if recv == "" || !token.IsExported(recv) {
			return
		}
		kind = "method"
		name = recv + "." + name
	}
	pass.Reportf(fd.Name.Pos(), "exported %s %s has no doc comment", kind, name)
}

// receiverTypeName unwraps a receiver field to its base type name,
// looking through pointers and generic instantiations.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// checkGenDoc flags exported names in type/const/var declarations that
// are covered by neither a group doc, a per-spec doc, nor a trailing
// line comment.
func checkGenDoc(pass *Pass, gd *ast.GenDecl) {
	if gd.Tok != token.TYPE && gd.Tok != token.CONST && gd.Tok != token.VAR {
		return
	}
	groupDoc := gd.Doc != nil && strings.TrimSpace(gd.Doc.Text()) != ""
	for _, spec := range gd.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if covered := groupDoc || s.Doc != nil || s.Comment != nil; covered {
				continue
			}
			if s.Name.IsExported() {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if covered := groupDoc || s.Doc != nil || s.Comment != nil; covered {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment",
						gd.Tok.String(), name.Name)
				}
			}
		}
	}
}

package analysis

import "go/token"

// This file is the dataflow half of the flow framework: a small forward
// engine over FuncCFG, specialised to the fact shape both lifecycle
// analyzers (spanend, lockguard) need — a set of "open" resources keyed
// by a stable string, each remembering where it was opened.
//
// The engine runs a may-analysis: facts are joined by set union, so a
// resource is "open" at a point if it is open along ANY path reaching
// it. For must-release properties ("every span is ended on all paths",
// "every lock is unlocked on all paths") that is exactly the check:
// anything still open in the set flowing into the normal Exit block is
// open on at least one path, which is a violation. Paths into PanicExit
// are deliberately not checked (see cfg.go).

// Facts is a may-set of open resources: key -> position where the
// resource was opened (kept for diagnostics; on a join conflict the
// earliest position wins, deterministically).
type Facts map[string]token.Pos

// clone copies a fact set.
func (f Facts) clone() Facts {
	out := make(Facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// join unions other into f, keeping the earliest open position per key.
func (f Facts) join(other Facts) (Facts, bool) {
	changed := false
	for k, v := range other {
		if have, ok := f[k]; !ok || v < have {
			if !ok {
				changed = true
			}
			f[k] = v
		}
	}
	return f, changed
}

// equal reports whether two fact sets have the same keys.
func (f Facts) equal(other Facts) bool {
	if len(f) != len(other) {
		return false
	}
	for k := range f {
		if _, ok := other[k]; !ok {
			return false
		}
	}
	return true
}

// Transfer mutates the facts for one block node: open resources are
// added (Open), released ones removed (Close). The engine hands each
// transfer function a private copy, so implementations may mutate in
// place.
type Transfer func(blk *Block, in Facts) Facts

// FlowResult is the fixpoint of a forward may-analysis.
type FlowResult struct {
	// In maps each reachable block to the facts flowing into it.
	In map[*Block]Facts
	// AtExit is the fact set flowing into the normal Exit block:
	// resources open on at least one return path.
	AtExit Facts
}

// ForwardMay runs the forward may-analysis to fixpoint: worklist over
// reverse postorder, union join. transfer is applied once per block per
// sweep and must be deterministic.
func ForwardMay(g *FuncCFG, transfer Transfer) FlowResult {
	rpo := g.ReversePostorder()
	in := make(map[*Block]Facts, len(rpo))
	out := make(map[*Block]Facts, len(rpo))
	in[g.Entry] = Facts{}

	// Iterate RPO sweeps until no out-set changes. Go CFGs are reducible
	// in practice, so this converges in two or three sweeps.
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			inb := Facts{}
			if b == g.Entry {
				inb = in[g.Entry].clone()
			}
			for _, p := range b.Preds {
				if po, ok := out[p]; ok {
					inb, _ = inb.join(po)
				}
			}
			in[b] = inb
			newOut := transfer(b, inb.clone())
			if old, ok := out[b]; !ok || !old.equal(newOut) {
				out[b] = newOut
				changed = true
			}
		}
	}

	exitIn := Facts{}
	for _, p := range g.Exit.Preds {
		if po, ok := out[p]; ok {
			exitIn, _ = exitIn.join(po)
		}
	}
	return FlowResult{In: in, AtExit: exitIn}
}

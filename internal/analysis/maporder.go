package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder catches the classic Go nondeterminism bug: building ordered
// output — slice appends or string concatenation — inside a for-range
// over a map, whose iteration order changes run to run. A loop is
// clean if the value it builds is visibly sorted later in the same
// function (any call whose package or name mentions "sort" receiving
// the value), if the append target is local to the loop body (its
// order cannot escape an iteration), or if the site carries a
// //shahinvet:allow maporder annotation.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map-iteration order leaking into slices or strings without a sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		var funcs []ast.Node // innermost-last stack of enclosing func bodies
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case nil:
				if len(funcs) > 0 && funcs[len(funcs)-1] == nil {
					funcs = funcs[:len(funcs)-1]
				}
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			case *ast.RangeStmt:
				if _, ok := info.TypeOf(n.X).Underlying().(*types.Map); ok {
					checkMapRange(pass, n, enclosingBody(funcs))
				}
			}
			return true
		})
	}
}

// enclosingBody returns the body of the innermost function on the
// stack (nil at file scope, which cannot contain statements anyway).
func enclosingBody(funcs []ast.Node) *ast.BlockStmt {
	for i := len(funcs) - 1; i >= 0; i-- {
		switch fn := funcs[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRange(pass *Pass, loop *ast.RangeStmt, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	mapExpr := types.ExprString(loop.X)
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN:
			// s += ... on a string accumulates in iteration order.
			if len(assign.Lhs) == 1 && isStringExpr(info, assign.Lhs[0]) {
				target := types.ExprString(assign.Lhs[0])
				if !localToLoop(info, assign.Lhs[0], loop) && !sortedAfter(body, loop, target) {
					pass.Reportf(assign.Pos(),
						"string %s is built in map-iteration order over %s; collect and sort instead, or annotate with //shahinvet:allow maporder", target, mapExpr)
				}
			}
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range assign.Rhs {
				if i >= len(assign.Lhs) || !isAppendCall(info, rhs) {
					continue
				}
				target := assign.Lhs[i]
				targetStr := types.ExprString(target)
				if localToLoop(info, target, loop) || sortedAfter(body, loop, targetStr) {
					continue
				}
				pass.Reportf(assign.Pos(),
					"%s is appended to in map-iteration order over %s; sort it before use or annotate with //shahinvet:allow maporder", targetStr, mapExpr)
			}
		}
		return true
	})
}

func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// localToLoop reports whether the target is a variable declared inside
// the loop body: per-iteration values never expose iteration order.
func localToLoop(info *types.Info, target ast.Expr, loop *ast.RangeStmt) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	return obj != nil && obj.Pos() >= loop.Body.Lbrace && obj.Pos() <= loop.Body.Rbrace
}

// sortedAfter reports whether, later in the enclosing function body,
// some sort-ish call receives the target: sort.Slice(target, ...),
// slices.Sort(target), sortNodes(target), target.Sort(), and friends.
func sortedAfter(body *ast.BlockStmt, loop *ast.RangeStmt, target string) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < loop.End() {
			return true
		}
		if !sortishCallee(call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
				return false
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && types.ExprString(sel.X) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// sortishCallee reports whether the callee's name, or its package or
// receiver qualifier, mentions sorting.
func sortishCallee(fun ast.Expr) bool {
	switch fn := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fn.Name), "sort")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(fn.Sel.Name), "sort") ||
			strings.Contains(strings.ToLower(types.ExprString(fn.X)), "sort")
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockGuard is the lock-lifecycle analyzer. Three invariants, all
// flow-aware where it matters:
//
//  1. no mutex is copied by value (value receivers, value parameters,
//     and dereference copies of types that contain a sync.Mutex or
//     sync.RWMutex);
//  2. every Lock/RLock is released on every normal control-flow path
//     (defer counts, panic paths are exempt — see cfg.go);
//  3. no potentially blocking operation runs while a lock may be held:
//     channel sends/receives, selects without a default clause,
//     net/http calls, time.Sleep, sync.WaitGroup.Wait, PredictCtx (the
//     classifier backend may stall), and calls to same-package
//     functions that transitively do any of those (the package-level
//     call-graph approximation; cross-package callees are assumed
//     non-blocking).
//
// For invariant 3 a deferred unlock does NOT release the lock — the
// lock is held until function exit — while for invariant 2 it does.
// The two passes therefore run with different transfer functions over
// the same CFG.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "forbid mutex copies, locks not released on all paths, and blocking calls under a held lock",
	Run:  runLockGuard,
}

func runLockGuard(pass *Pass) {
	blocking := blockingFuncs(pass.Pkg)
	forEachFuncBody(pass.Pkg, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
		checkLockFlow(pass, body, blocking)
	})
	checkMutexCopies(pass)
}

// ---- invariant 1: mutex copies ----

// containsMutex reports whether t (passed by value) embeds a
// sync.Mutex or sync.RWMutex anywhere.
func containsMutex(t types.Type) bool {
	return containsMutexRec(t, make(map[types.Type]bool))
}

func containsMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" || obj.Name() == "Once") {
			return true
		}
		return containsMutexRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsMutexRec(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexRec(t.Elem(), seen)
	}
	return false
}

// checkMutexCopies flags value receivers, value parameters, and
// dereference assignments whose type carries a lock.
func checkMutexCopies(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fields := []*ast.Field{}
				if n.Recv != nil {
					fields = append(fields, n.Recv.List...)
				}
				if n.Type.Params != nil {
					fields = append(fields, n.Type.Params.List...)
				}
				for _, field := range fields {
					tv, ok := info.Types[field.Type]
					if !ok {
						continue
					}
					if _, isPtr := tv.Type.(*types.Pointer); isPtr {
						continue
					}
					if containsMutex(tv.Type) {
						pass.Reportf(field.Pos(),
							"%s passes a lock by value: %s contains a sync mutex; use a pointer",
							funcKind(n), types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					star, ok := ast.Unparen(rhs).(*ast.StarExpr)
					if !ok {
						continue
					}
					if tv, ok := info.Types[star]; ok && containsMutex(tv.Type) {
						pass.Reportf(rhs.Pos(),
							"assignment copies a lock: dereferencing %s copies its sync mutex",
							types.ExprString(star.X))
					}
				}
			}
			return true
		})
	}
}

// funcKind names the declaration form for the copy diagnostic.
func funcKind(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}

// ---- invariants 2 and 3: lock flow ----

// lockOp classifies one mutex method call.
type lockOp struct {
	key     string // "expr-path:mode", e.g. "s.mu:w"
	acquire bool
}

// classifyLockCall recognises k.Lock/RLock/Unlock/RUnlock on a sync
// mutex (or a type embedding one via field selection).
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var mode string
	var acquire bool
	switch sel.Sel.Name {
	case "Lock":
		mode, acquire = "w", true
	case "Unlock":
		mode, acquire = "w", false
	case "RLock":
		mode, acquire = "r", true
	case "RUnlock":
		mode, acquire = "r", false
	default:
		return lockOp{}, false
	}
	// The receiver must be (or point to) a sync.Mutex / sync.RWMutex.
	tv, ok := info.Types[sel.X]
	if !ok {
		return lockOp{}, false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return lockOp{}, false
	}
	path, ok := exprPath(sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: path + ":" + mode, acquire: acquire}, true
}

// exprPath renders a selector chain of plain identifiers ("s.mu",
// "b.inner.mu") as a stable key; anything else (index expressions,
// call results) is untrackable.
func exprPath(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.UnaryExpr:
		return exprPath(e.X)
	}
	return "", false
}

// checkLockFlow runs both lock passes over one function body.
func checkLockFlow(pass *Pass, body *ast.BlockStmt, blocking map[*types.Func]bool) {
	info := pass.Pkg.Info
	if !usesLocks(info, body) {
		return
	}
	g := BuildCFG(body)
	nonBlockingComm := nonBlockingSelectStmts(body)

	// Pass A (invariant 2): deferred unlocks release. Anything still
	// held at the normal exit is a leak on some path.
	leak := func(blk *Block, in Facts) Facts {
		for _, n := range blk.Nodes {
			lockTransfer(info, n, in, true)
		}
		return in
	}
	resA := ForwardMay(g, leak)
	for key, pos := range resA.AtExit {
		name := strings.TrimSuffix(strings.TrimSuffix(key, ":w"), ":r")
		verb := "Unlock"
		if strings.HasSuffix(key, ":r") {
			verb = "RUnlock"
		}
		pass.Reportf(pos,
			"%s locked here is not released on every path; call %s.%s on all exits (or defer it)",
			name, name, verb)
	}

	// Pass B (invariant 3): deferred unlocks do NOT release — the lock
	// is held until exit. At every node reached with a non-empty held
	// set, blocking operations are findings.
	held := func(blk *Block, in Facts) Facts {
		for _, n := range blk.Nodes {
			lockTransfer(info, n, in, false)
		}
		return in
	}
	resB := ForwardMay(g, held)
	reported := make(map[string]bool)
	for _, blk := range g.ReversePostorder() {
		in, ok := resB.In[blk]
		if !ok {
			continue
		}
		facts := in.clone()
		for _, n := range blk.Nodes {
			if len(facts) > 0 {
				if why := blockingNode(info, n, blocking, nonBlockingComm); why != "" {
					lockName := heldLockName(facts)
					at := pass.Pkg.Fset.Position(n.Pos())
					dedup := why + "@" + at.String()
					if !reported[dedup] {
						reported[dedup] = true
						pass.Reportf(n.Pos(),
							"%s while %s is held; release the lock first or make the operation non-blocking", why, lockName)
					}
				}
			}
			lockTransfer(info, n, facts, false)
		}
	}
}

// usesLocks cheaply pre-screens a body for Lock/RLock calls.
func usesLocks(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := classifyLockCall(info, call); ok && op.acquire {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// lockTransfer applies one node to the held-lock set. deferReleases
// selects the pass-A semantics (deferred unlock discharges the fact).
func lockTransfer(info *types.Info, n ast.Node, facts Facts, deferReleases bool) {
	applyCall := func(call *ast.CallExpr, deferred bool) {
		op, ok := classifyLockCall(info, call)
		if !ok {
			return
		}
		switch {
		case op.acquire && !deferred:
			facts[op.key] = call.Pos()
		case !op.acquire && (!deferred || deferReleases):
			delete(facts, op.key)
		}
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		applyCall(n.Call, true)
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					applyCall(call, true)
				}
				return true
			})
		}
	default:
		ast.Inspect(n, func(c ast.Node) bool {
			if _, ok := c.(*ast.FuncLit); ok {
				return false // closures run elsewhere
			}
			if call, ok := c.(*ast.CallExpr); ok {
				applyCall(call, false)
			}
			return true
		})
	}
}

// heldLockName renders the held set for a diagnostic, deterministically
// picking the lexicographically first lock.
func heldLockName(facts Facts) string {
	best := ""
	for key := range facts {
		name := strings.TrimSuffix(strings.TrimSuffix(key, ":w"), ":r")
		if best == "" || name < best {
			best = name
		}
	}
	return best
}

// nonBlockingSelectStmts collects select statements with a default
// clause (non-blocking by construction) and their comm statements.
func nonBlockingSelectStmts(body *ast.BlockStmt) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			out[sel] = true
			for _, cs := range sel.Body.List {
				if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
					out[cc.Comm] = true
				}
			}
		}
		return true
	})
	return out
}

// blockingNode reports why node n blocks ("" when it does not):
// channel operations outside non-blocking selects, selects without
// default, sleeps, WaitGroup waits, net/http calls, PredictCtx, and
// same-package calls with a blocking summary.
func blockingNode(info *types.Info, n ast.Node, blocking map[*types.Func]bool, nonBlockingComm map[ast.Node]bool) string {
	if nonBlockingComm[n] {
		return ""
	}
	why := ""
	ast.Inspect(n, func(c ast.Node) bool {
		if why != "" {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if nonBlockingComm[c] {
			return false
		}
		switch c := c.(type) {
		case *ast.SendStmt:
			why = "channel send"
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				why = "channel receive"
			}
		case *ast.SelectStmt:
			if !nonBlockingComm[c] {
				why = "blocking select (no default clause)"
			}
			return false
		case *ast.GoStmt:
			return false // the spawned goroutine blocks, not this one
		case *ast.CallExpr:
			why = blockingCall(info, c, blocking)
		}
		return why == ""
	})
	return why
}

// blockingCall classifies one call expression ("" when not blocking).
func blockingCall(info *types.Info, call *ast.CallExpr, blocking map[*types.Func]bool) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "PredictCtx" {
		return "classifier PredictCtx call"
	}
	fn := staticCallee(info, call)
	if fn == nil {
		return ""
	}
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		if path == "time" && fn.Name() == "Sleep" {
			return "time.Sleep"
		}
		if path == "sync" && fn.Name() == "Wait" {
			return "sync WaitGroup wait"
		}
		if path == "net" || strings.HasPrefix(path, "net/") {
			return "network call " + path + "." + fn.Name()
		}
	}
	if fn.Name() == "Wait" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "sync" {
				return "sync." + named.Obj().Name() + ".Wait"
			}
		}
	}
	if blocking[fn] {
		return "call to " + fn.Name() + " (which may block)"
	}
	return ""
}

// blockingFuncs computes the package's blocking summaries: functions
// whose body directly contains a blocking operation, widened through
// the package call graph to everything that calls them.
func blockingFuncs(pkg *Package) map[*types.Func]bool {
	g := BuildCallGraph(pkg)
	seed := make(map[*types.Func]bool)
	none := map[*types.Func]bool{}
	for fn, fd := range g.Decls {
		nonBlocking := nonBlockingSelectStmts(fd.Body)
		direct := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if direct {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n.(type) {
			case *ast.SendStmt, *ast.UnaryExpr, *ast.SelectStmt, *ast.CallExpr:
				if why := blockingNode(pkg.Info, n, none, nonBlocking); why != "" {
					direct = true
					return false
				}
				// Descend no further: blockingNode already walked this
				// subtree.
				return false
			}
			return true
		})
		if direct {
			seed[fn] = true
		}
	}
	return g.Transitive(seed)
}

// Package detrand is a fixture for the detrand analyzer: global-RNG
// calls and clock-seeded sources must be flagged, explicit seeding and
// threaded generators must not.
package detrand

import (
	"math/rand"
	"time"
)

func globalInt() int {
	return rand.Intn(10) // want "global RNG"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global RNG"
}

func globalFloat() float64 {
	return rand.Float64() // want "global RNG"
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "wall clock"
}

func fixedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit seed
}

func threaded(r *rand.Rand) int {
	return r.Intn(10) // ok: method on a threaded generator
}

func suppressed() int {
	return rand.Intn(10) //shahinvet:allow detrand — fixture exercises suppression
}

func suppressedAbove() int {
	//shahinvet:allow detrand — directive on the line above also works
	return rand.Int()
}

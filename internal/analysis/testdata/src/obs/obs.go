// Package obs is a fixture for the nilrecv analyzer, which applies to
// packages named obs: exported pointer-receiver methods must compare
// the receiver against nil before touching its fields.
package obs

// Counter mimics the real obs counter shape.
type Counter struct{ n int64 }

// BadLateGuard reads a field before the guard.
func (c *Counter) BadLateGuard() int64 { // want "nil guard"
	v := c.n
	if c == nil {
		return 0
	}
	return v
}

// BadUnguarded never checks at all.
func (c *Counter) BadUnguarded() { c.n++ } // want "nil guard"

// BadFieldInCondition dereferences inside the guard itself.
func (c *Counter) BadFieldInCondition() bool { // want "nil guard"
	return c.n == 0 || c == nil
}

// Guarded is the documented pattern.
func (c *Counter) Guarded() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// GuardedPositively wraps the work in a non-nil check.
func (c *Counter) GuardedPositively(n int64) {
	if c != nil {
		c.n += n
	}
}

// Delegating calls a guarded method: legal on nil pointers, no field
// access, so no guard is required.
func (c *Counter) Delegating() { c.GuardedPositively(1) }

// unexported methods are internal plumbing and out of scope.
func (c *Counter) unexported() int64 { return c.n }

// Plain has a value receiver, which cannot be a nil pointer.
type Plain struct{ n int }

// Value is fine without a guard.
func (p Plain) Value() int { return p.n }

//shahinvet:allow nilrecv — fixture exercises suppression
func (c *Counter) Suppressed() { c.n++ }

// Package walltime is a fixture for the walltime analyzer: bare clock
// reads must be flagged, annotated ones must not. (The real obs/bench
// exemption is covered by the module self-clean test.)
package walltime

import "time"

func stamp() time.Time {
	return time.Now() // want "obs/bench"
}

func elapsed() time.Duration {
	start := time.Now() // want "obs/bench"
	return time.Since(start)
}

func suppressed() time.Time {
	return time.Now() //shahinvet:allow walltime — fixture exercises suppression
}

func suppressedAbove() time.Time {
	//shahinvet:allow walltime — directive on the line above also works
	return time.Now()
}

func noClock(d time.Duration) time.Duration {
	return d * 2 // ok: duration arithmetic, no clock read
}

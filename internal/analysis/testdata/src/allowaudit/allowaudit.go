// Package allowaudit exercises the suppression-inventory audit. The
// golden test runs errcheck together with allowaudit over this file,
// so directives that genuinely suppress an errcheck finding read as
// used and everything else is flagged.
package allowaudit

import "os"

// used carries a directive that suppresses a real errcheck finding:
// the directive is consumed, so allowaudit stays quiet about it.
func used() {
	//shahinvet:allow errcheck — exercising a consumed directive
	os.Remove("tmp")
}

// stale carries a directive above a line errcheck has no complaint
// about (blank assignment is already allowed), so it suppresses
// nothing.
func stale() {
	//shahinvet:allow errcheck — covers nothing // want "allowaudit: shahinvet:allow errcheck suppresses no errcheck finding"
	_ = os.Remove("tmp2")
}

// unknown names an analyzer that does not exist.
//
//shahinvet:allow nosuchcheck // want "allowaudit: shahinvet:allow names unknown analyzer"
func unknown() {}

// malformed names no analyzers at all.
//
//shahinvet:allow  // want "allowaudit: shahinvet:allow directive names no analyzers"
func malformed() {}

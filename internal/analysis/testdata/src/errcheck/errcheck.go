// Package errcheck is a fixture for the errcheck analyzer: silently
// discarded error returns must be flagged; handled, blank-assigned,
// fmt, and in-memory-writer calls must not.
package errcheck

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func discarded(f *os.File) {
	f.Close() // want "error result is discarded"
}

func deferred(f *os.File) {
	defer f.Close() // want "error result is discarded"
}

func goroutine(f *os.File) {
	go f.Sync() // want "error result is discarded"
}

func viaFuncValue(fn func() error) {
	fn() // want "error result is discarded"
}

func handled(f *os.File) error {
	return f.Close() // ok: propagated
}

func blankAssigned(f *os.File) {
	_ = f.Close() // ok: the discard is explicit and visible in review
}

func fmtExempt(w *os.File) {
	fmt.Println("hello")        // ok: fmt printers are exempt
	fmt.Fprintf(w, "x=%d\n", 1) // ok
}

func inMemoryExempt(b *strings.Builder, buf *bytes.Buffer) {
	b.WriteString("x") // ok: strings.Builder never fails
	buf.WriteByte('y') // ok: bytes.Buffer never fails
}

func noError() {
	noErrorResult() // ok: no error to lose
}

func noErrorResult() int { return 0 }

func suppressed(f *os.File) {
	f.Close() //shahinvet:allow errcheck — fixture exercises suppression
}

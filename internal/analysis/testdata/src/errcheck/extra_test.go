package errcheck

import "os"

// helperForTests exists so the driver's -tests flag has an in-package
// test file with a violation: invisible by default, flagged with -tests.
func helperForTests() {
	os.Remove("scratch")
}

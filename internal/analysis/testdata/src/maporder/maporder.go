// Package maporder is a fixture for the maporder analyzer: output
// built in map-iteration order must be flagged unless it is visibly
// sorted afterwards, local to an iteration, or annotated.
package maporder

import "sort"

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map-iteration order"
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // ok: sorted below
	}
	sort.Strings(out)
	return out
}

func sortedViaHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // ok: sortish helper below
	}
	sortAndDedupe(out)
	return out
}

func sortAndDedupe(xs []string) { sort.Strings(xs) }

func concatenated(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "map-iteration order"
	}
	return s
}

func commutativeSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer sum is order-independent
	}
	return n
}

func perIterationLocal(m map[string][]int, out map[string][]int) {
	for k, vs := range m {
		row := append([]int(nil), vs...) // ok: local to the iteration
		out[k] = row
	}
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //shahinvet:allow maporder — fixture exercises suppression
	}
	return out
}

package pkgdoc // want "package pkgdoc has no package comment"

// Documented is fine: exported type with a doc comment.
type Documented struct{ n int }

type Naked struct { // want "exported type Naked has no doc comment"
	n int
}

type hidden struct{ n int } // ok: unexported

// Grouped declarations: the group doc covers every spec.
type (
	CoveredA struct{}
	CoveredB struct{}
)

type (
	Uncovered struct { // want "exported type Uncovered has no doc comment"
		n int
	}
)

// Explain is fine: exported method on an exported type, documented.
func (d *Documented) Explain() int { return d.n }

func (d *Documented) Bare() int { return d.n } // want "exported method Documented.Bare has no doc comment"

func (h *hidden) Bare() int { return h.n } // ok: receiver type is unexported

// Run is fine: exported function with a doc comment.
func Run() {}

func Walk() {} // want "exported function Walk has no doc comment"

func Allowed() {} //shahinvet:allow pkgdoc — fixture exercises suppression

func helper() {} // ok: unexported

// Limits for the fixture: a group doc covering its const specs.
const (
	MaxA = 1
	MaxB = 2
)

const (
	LineCommented = 3 // ok: a trailing line comment documents the spec

	Undocumented = "un" + // want "exported const Undocumented has no doc comment"
		"documented"
)

var Registry = map[string]int{ // want "exported var Registry has no doc comment"
	"a": 1,
}

// Quiet is fine: documented package-level var.
var Quiet = 0

var _ = helper // ok: blank names need no doc

// Package hotalloc exercises the hot-path allocation analyzer: only
// functions tagged //shahin:hotpath are audited.
package hotalloc

import "fmt"

func sink(v interface{}) {}

// renderAll formats inside its loop. The append itself is fine — the
// destination is made with explicit capacity — but the Sprintf is not.
//
//shahin:hotpath
func renderAll(items []int) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, fmt.Sprintf("%d", it)) // want "hotalloc: fmt.Sprintf allocates on a hot path"
	}
	return out
}

// collect grows an uncapped slice per iteration.
//
//shahin:hotpath
func collect(items []int) []int {
	var out []int
	for _, it := range items {
		out = append(out, it) // want "hotalloc: append in a loop on a hot path"
	}
	return out
}

// boxes passes a concrete int to an interface parameter.
//
//shahin:hotpath
func boxes(x int) {
	sink(x) // want "hotalloc: argument x boxes into interface"
}

// closures allocates a capturing closure every iteration.
//
//shahin:hotpath
func closures(items []int) int {
	total := 0
	for _, it := range items {
		add := func() { total += it } // want "hotalloc: closure capturing"
		add()
	}
	return total
}

// presized does everything right: capacity up front, no formatting, no
// boxing. No findings.
//
//shahin:hotpath
func presized(items []int) []int {
	out := make([]int, 0, len(items))
	for _, it := range items {
		out = append(out, it*it)
	}
	return out
}

// unaudited is not tagged, so the same Sprintf is not a finding here.
func unaudited(items []int) string {
	return fmt.Sprintf("%d", len(items))
}

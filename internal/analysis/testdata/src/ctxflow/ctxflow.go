// Package ctxflow exercises the context-propagation analyzer: severed
// chains are findings, forwarded and derived contexts are not.
package ctxflow

import "context"

func helper(ctx context.Context) {}

// forwardOK threads the incoming context and a derived child: neither
// call is a finding.
func forwardOK(ctx context.Context) {
	helper(ctx)
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	helper(child)
}

// severs drops the caller's context twice: once with a literal
// Background call, once through a TODO-rooted variable.
func severs(ctx context.Context) {
	helper(context.Background()) // want "ctxflow: context.Background() passed to helper"
	bg := context.TODO()
	helper(bg) // want "ctxflow: context rooted in context.Background/TODO passed to helper"
}

// ExplainCtx is a *Ctx-named entry point: Background is banned inside
// it even though the package is not serve or fault.
func ExplainCtx(x int) {
	ctx := context.Background() // want "ctxflow: context.Background() inside ExplainCtx"
	helper(ctx)
	_ = x
}

// freeAgent has no context parameter and a neutral name: Background is
// legitimate here (a root is being created, not severed).
func freeAgent() {
	helper(context.Background())
}

// Package serve exercises ctxflow's package-level ban: in a package
// whose path ends in serve (or fault), context.Background and
// context.TODO are findings anywhere, not just next to a severed call.
package serve

import "context"

// startup creates a root context on the serving path without an
// annotation: a finding.
func startup() context.Context {
	return context.Background() // want "ctxflow: context.Background() inside package serve"
}

// lifecycleRoot is the sanctioned pattern: a deliberate detached root
// carries an allow directive with its reason.
func lifecycleRoot() context.Context {
	//shahinvet:allow ctxflow — lifecycle root detached from any request
	return context.TODO()
}

// Package lockguard exercises the lock-lifecycle analyzer: mutex
// copies, leaks on a branch, and blocking operations under a held lock.
package lockguard

import (
	"sync"
	"time"
)

// counter carries a mutex, so passing it by value copies the lock.
type counter struct {
	mu sync.Mutex
	n  int
}

// byValue copies the receiver (and its mutex) on every call.
func (c counter) byValue() int { // want "lockguard: method byValue passes a lock by value"
	return c.n
}

// byPointer is the correct form: no finding.
func (c *counter) byPointer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// leakOnBranch unlocks on the fall-through path but not on the early
// return.
func leakOnBranch(c *counter, cond bool) {
	c.mu.Lock() // want "lockguard: c.mu locked here is not released on every path"
	if cond {
		return
	}
	c.mu.Unlock()
}

// sendWhileHeld performs a channel send with the lock held.
func sendWhileHeld(c *counter, ch chan int) {
	c.mu.Lock()
	ch <- c.n // want "lockguard: channel send while c.mu is held"
	c.mu.Unlock()
}

// napper blocks directly; callers inherit the summary through the
// package call graph.
func napper() { time.Sleep(time.Millisecond) }

// callsBlockerHeld calls a same-package blocking function under the
// lock.
func callsBlockerHeld(c *counter) {
	c.mu.Lock()
	napper() // want "lockguard: call to napper (which may block) while c.mu is held"
	c.mu.Unlock()
}

// selectDefaultOK sends under the lock only through a select with a
// default clause, which cannot block: no finding.
func selectDefaultOK(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- c.n:
	default:
	}
}

// lockStraightLine is the ordinary critical section: no finding.
func lockStraightLine(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

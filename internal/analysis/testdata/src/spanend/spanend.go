// Package spanend exercises the span-lifecycle analyzer with a
// self-contained tracer (fixtures cannot import internal/obs; the
// analyzer matches StartSpan/StartDetachedSpan by method name).
package spanend

// Span is a stand-in for the obs span type.
type Span struct{}

// End closes the span.
func (s *Span) End() {}

// SetAttr is a non-escaping receiver use.
func (s *Span) SetAttr(k, v string) {}

// Tracer is a stand-in for the obs recorder.
type Tracer struct{}

// StartSpan opens a span.
func (t *Tracer) StartSpan(name string) *Span { return &Span{} }

// StartDetachedSpan opens a detached span.
func (t *Tracer) StartDetachedSpan(name string) *Span { return &Span{} }

func work() {}

// leakOnBranch ends the span on the fall-through path but not on the
// early return: a finding at the start site.
func leakOnBranch(t *Tracer, cond bool) {
	s := t.StartSpan("work") // want "spanend: span s started here is not ended on every path"
	if cond {
		return
	}
	s.End()
}

// endedEverywhere closes the span on both paths: no finding.
func endedEverywhere(t *Tracer, cond bool) {
	s := t.StartSpan("ok")
	s.SetAttr("k", "v")
	if cond {
		s.End()
		return
	}
	s.End()
}

// deferredEnd discharges the obligation at the defer statement, which
// covers every later exit: no finding.
func deferredEnd(t *Tracer, cond bool) {
	s := t.StartDetachedSpan("d")
	defer s.End()
	if cond {
		return
	}
	work()
}

// handsOff returns the span: ownership transfers to the caller, so the
// missing End here is not a finding.
func handsOff(t *Tracer) *Span {
	s := t.StartSpan("handoff")
	return s
}

// loopLeak starts a fresh span each iteration and only ends the last
// one after the loop on some paths; the early continue leaks.
func loopLeak(t *Tracer, items []int) {
	for range items {
		s := t.StartSpan("iter") // want "spanend: span s started here is not ended on every path"
		if len(items) > 3 {
			continue
		}
		s.End()
	}
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses a function body (given as the statements between
// the braces) and returns its CFG.
func buildTestCFG(t *testing.T, body string) *FuncCFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// reachable returns the blocks reachable from the entry.
func reachable(g *FuncCFG) map[*Block]bool {
	out := make(map[*Block]bool)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if out[b] {
			return
		}
		out[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	dfs(g.Entry)
	return out
}

// findBlock returns the first reachable block containing a node for
// which pred returns true, or nil.
func findBlock(g *FuncCFG, pred func(ast.Node) bool) *Block {
	for blk := range reachable(g) {
		for _, n := range blk.Nodes {
			if pred(n) {
				return blk
			}
		}
	}
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	g := buildTestCFG(t, "x := 1\nx++\n_ = x")
	if len(g.Exit.Preds) == 0 {
		t.Fatal("straight-line body does not reach the exit")
	}
	if len(g.PanicExit.Preds) != 0 {
		t.Error("straight-line body reaches the panic exit")
	}
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3", len(g.Entry.Nodes))
	}
}

func TestCFGBranches(t *testing.T) {
	g := buildTestCFG(t, `x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`)
	// The condition block must have two successors (then and else).
	cond := findBlock(g, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		return ok && be.Op == token.GTR
	})
	if cond == nil {
		t.Fatal("condition expression not recorded in any block")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2", len(cond.Succs))
	}
	if len(g.Exit.Preds) == 0 {
		t.Error("if/else does not rejoin and reach the exit")
	}
}

func TestCFGEarlyReturnAndPanic(t *testing.T) {
	g := buildTestCFG(t, `x := 0
if x > 0 {
	return
}
if x < 0 {
	panic("neg")
}
_ = x`)
	ret := findBlock(g, func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	if ret == nil {
		t.Fatal("return statement not recorded")
	}
	found := false
	for _, s := range ret.Succs {
		if s == g.Exit {
			found = true
		}
	}
	if !found {
		t.Error("return block does not flow to the normal exit")
	}
	if len(g.PanicExit.Preds) == 0 {
		t.Error("panic(...) does not reach the panic exit")
	}
	for _, p := range g.PanicExit.Preds {
		if p == g.Exit {
			t.Error("panic exit wired through the normal exit")
		}
	}
}

func TestCFGLoops(t *testing.T) {
	g := buildTestCFG(t, `total := 0
for i := 0; i < 10; i++ {
	total += i
}
_ = total`)
	loops := g.LoopBlocks()
	if len(loops) == 0 {
		t.Fatal("for loop produced no loop blocks")
	}
	body := findBlock(g, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok == token.ADD_ASSIGN
	})
	if body == nil || !loops[body] {
		t.Error("loop body block not classified as being in a loop")
	}
	after := findBlock(g, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == "_"
	})
	if after == nil {
		t.Fatal("statement after the loop not recorded")
	}
	if loops[after] {
		t.Error("block after the loop classified as in-loop")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := buildTestCFG(t, `items := []int{1, 2}
n := 0
for _, it := range items {
	n += it
}
_ = n`)
	loops := g.LoopBlocks()
	body := findBlock(g, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok == token.ADD_ASSIGN
	})
	if body == nil || !loops[body] {
		t.Error("range body block not classified as in-loop")
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	g := buildTestCFG(t, `sum := 0
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue outer
		}
		if j == 2 {
			break outer
		}
		sum++
	}
}
_ = sum`)
	// continue outer must flow to the outer post (i++), not the inner.
	cont := findBlock(g, func(n ast.Node) bool {
		bs, ok := n.(*ast.BranchStmt)
		return ok && bs.Tok == token.CONTINUE && bs.Label != nil
	})
	if cont == nil {
		t.Fatal("continue outer not recorded")
	}
	outerPost := findBlock(g, func(n ast.Node) bool {
		inc, ok := n.(*ast.IncDecStmt)
		if !ok {
			return false
		}
		id, ok := inc.X.(*ast.Ident)
		return ok && id.Name == "i"
	})
	if outerPost == nil {
		t.Fatal("outer post statement not recorded")
	}
	foundPost := false
	for _, s := range cont.Succs {
		if s == outerPost {
			foundPost = true
		}
	}
	if !foundPost {
		t.Error("continue outer does not flow to the outer loop's post block")
	}
	// break outer must flow to the block after the outer loop.
	brk := findBlock(g, func(n ast.Node) bool {
		bs, ok := n.(*ast.BranchStmt)
		return ok && bs.Tok == token.BREAK && bs.Label != nil
	})
	after := findBlock(g, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == "_"
	})
	if brk == nil || after == nil {
		t.Fatal("break outer or trailing statement not recorded")
	}
	reachesAfter := false
	var dfs func(b *Block, seen map[*Block]bool)
	dfs = func(b *Block, seen map[*Block]bool) {
		if seen[b] {
			return
		}
		seen[b] = true
		if b == after {
			reachesAfter = true
		}
		for _, s := range b.Succs {
			dfs(s, seen)
		}
	}
	dfs(brk, make(map[*Block]bool))
	if !reachesAfter {
		t.Error("break outer does not reach the code after the loop")
	}
	// The break must not loop back to either head.
	loops := g.LoopBlocks()
	for _, s := range brk.Succs {
		if loops[s] {
			t.Error("break outer flows back into a loop block")
		}
	}
}

func TestCFGGotoLoop(t *testing.T) {
	g := buildTestCFG(t, `i := 0
loop:
i++
if i < 3 {
	goto loop
}
_ = i`)
	loops := g.LoopBlocks()
	if len(loops) == 0 {
		t.Fatal("goto-formed loop produced no loop blocks; LoopBlocks must be CFG-based, not syntax-based")
	}
	if len(g.Exit.Preds) == 0 {
		t.Error("goto loop never reaches the exit")
	}
}

func TestCFGDeferIsOrdinaryNode(t *testing.T) {
	g := buildTestCFG(t, `defer cleanup()
work()`)
	d := findBlock(g, func(n ast.Node) bool {
		_, ok := n.(*ast.DeferStmt)
		return ok
	})
	if d == nil {
		t.Fatal("defer statement not recorded as a block node")
	}
}

func TestCFGSelectClauses(t *testing.T) {
	g := buildTestCFG(t, `ch := make(chan int)
done := make(chan bool)
select {
case v := <-ch:
	_ = v
case <-done:
}
work()`)
	sel := findBlock(g, func(n ast.Node) bool {
		_, ok := n.(*ast.SelectStmt)
		return ok
	})
	if sel == nil {
		t.Fatal("select statement not recorded")
	}
	if len(sel.Succs) < 2 {
		t.Errorf("select head has %d successors, want one per comm clause (2)", len(sel.Succs))
	}
	if len(g.Exit.Preds) == 0 {
		t.Error("select does not rejoin and reach the exit")
	}
}

func TestCFGReversePostorder(t *testing.T) {
	g := buildTestCFG(t, `x := 0
if x > 0 {
	x = 1
}
for i := 0; i < x; i++ {
	x--
}
_ = x`)
	rpo := g.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatal("reverse postorder must start at the entry block")
	}
	seen := make(map[*Block]bool)
	for _, b := range rpo {
		if seen[b] {
			t.Fatalf("block %d appears twice in reverse postorder", b.Index)
		}
		seen[b] = true
	}
	if want := len(reachable(g)); len(rpo) != want {
		t.Errorf("reverse postorder has %d blocks, reachable set has %d", len(rpo), want)
	}
	// A predecessor outside any loop must precede its successor.
	pos := make(map[*Block]int)
	for i, b := range rpo {
		pos[b] = i
	}
	loops := g.LoopBlocks()
	for _, b := range rpo {
		for _, s := range b.Succs {
			if !loops[b] && !loops[s] && pos[s] < pos[b] {
				t.Errorf("non-loop edge %d -> %d goes backward in reverse postorder", b.Index, s.Index)
			}
		}
	}
}

// TestForwardMayJoin pins the dataflow engine on a diamond: a fact
// opened before the branch and closed on only one side must survive to
// the exit (may-analysis union join).
func TestForwardMayJoin(t *testing.T) {
	g := buildTestCFG(t, `open()
if cond() {
	close()
}
after()`)
	isCall := func(n ast.Node, name string) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
	transfer := func(blk *Block, in Facts) Facts {
		for _, n := range blk.Nodes {
			if isCall(n, "open") {
				in["res"] = n.Pos()
			}
			if isCall(n, "close") {
				delete(in, "res")
			}
		}
		return in
	}
	res := ForwardMay(g, transfer)
	if _, open := res.AtExit["res"]; !open {
		t.Error("fact closed on only one branch must still be open at exit under may semantics")
	}

	// Closing on both sides kills the fact.
	g2 := buildTestCFG(t, `open()
if cond() {
	close()
} else {
	close()
}
after()`)
	res2 := ForwardMay(g2, transfer)
	if _, open := res2.AtExit["res"]; open {
		t.Error("fact closed on every branch must be closed at exit")
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the package-level call-graph approximation of the flow
// framework: for every function or method declared in the package, the
// set of same-package functions it calls through static call sites
// (identifier or selector calls resolved by the type checker). Calls
// through function values, interface methods, and cross-package callees
// are absent — the standard trade-off for an intraprocedural framework:
// summaries computed over this graph are "best effort upward" (a
// property provable from direct calls propagates), never claims about
// dynamic dispatch.
type CallGraph struct {
	// Decls maps each declared function to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// Callees maps a declared function to the same-package declared
	// functions it statically calls, deduplicated, in source order.
	Callees map[*types.Func][]*types.Func
	// callers is the reverse edge set, for summary propagation.
	callers map[*types.Func][]*types.Func
}

// BuildCallGraph scans the package once and returns its call graph.
func BuildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{
		Decls:   make(map[*types.Func]*ast.FuncDecl),
		Callees: make(map[*types.Func][]*types.Func),
		callers: make(map[*types.Func][]*types.Func),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[fn] = fd
		}
	}
	// Walk bodies in source order, not map order: the callers lists
	// feed Transitive's worklist and must be deterministic run to run.
	fns := make([]*types.Func, 0, len(g.Decls))
	for fn := range g.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		fd := g.Decls[fn]
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pkg.Info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, declared := g.Decls[callee]; !declared {
				return true
			}
			seen[callee] = true
			g.Callees[fn] = append(g.Callees[fn], callee)
			g.callers[callee] = append(g.callers[callee], fn)
			return true
		})
		sort.Slice(g.Callees[fn], func(i, j int) bool {
			return g.Callees[fn][i].Pos() < g.Callees[fn][j].Pos()
		})
	}
	return g
}

// Transitive propagates a seed property up the call graph: the result
// contains every function in seed plus every function that (directly or
// transitively) calls one. Used for summaries like "may perform a
// blocking operation".
func (g *CallGraph) Transitive(seed map[*types.Func]bool) map[*types.Func]bool {
	out := make(map[*types.Func]bool, len(seed))
	var work []*types.Func
	for fn, ok := range seed {
		if ok {
			out[fn] = true
			work = append(work, fn)
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].Pos() < work[j].Pos() })
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range g.callers[fn] {
			if !out[caller] {
				out[caller] = true
				work = append(work, caller)
			}
		}
	}
	return out
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd is the span-lifecycle analyzer: every span obtained from
// StartSpan or StartDetachedSpan must be ended on every normal
// control-flow path out of the function that started it. A span that
// escapes — returned, passed to another function, stored in a struct,
// captured by a non-deferred closure — transfers the obligation to the
// new owner and stops being tracked (the package-level approximation:
// ownership is checked one function at a time).
//
// "defer s.End()" (directly or inside a deferred function literal)
// discharges the obligation at the point the defer statement executes,
// which is sound: the deferred call runs on every exit of every path
// that registered it. Paths that end in panic(...) are not checked
// (see cfg.go for the trade-off).
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "require StartSpan/StartDetachedSpan results to be ended on all control-flow paths",
	Run:  runSpanEnd,
}

// spanStarters are the method names whose results carry an End
// obligation. Matching is by method name: fixtures cannot import
// internal/obs (the fixture loader resolves imports as stdlib only),
// and no other type in this module declares methods with these names.
var spanStarters = map[string]bool{
	"StartSpan":         true,
	"StartDetachedSpan": true,
}

func runSpanEnd(pass *Pass) {
	forEachFuncBody(pass.Pkg, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
		checkSpanBody(pass, body)
	})
}

// checkSpanBody runs the open-span may-analysis over one function body.
func checkSpanBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	tracked := spanVars(info, body)
	if len(tracked) == 0 {
		return
	}
	g := BuildCFG(body)
	names := make(map[string]string) // fact key -> variable name
	transfer := func(blk *Block, in Facts) Facts {
		for _, n := range blk.Nodes {
			spanTransfer(info, tracked, names, n, in)
		}
		return in
	}
	res := ForwardMay(g, transfer)
	reported := make(map[string]bool)
	for key, pos := range res.AtExit {
		if reported[key] {
			continue
		}
		reported[key] = true
		pass.Reportf(pos,
			"span %s started here is not ended on every path; call %s.End() on all exits (or defer it)",
			names[key], names[key])
	}
}

// spanVars finds the local variables assigned from a span-starting
// call anywhere in the body, keyed by their defining object.
func spanVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		if !isSpanStartCall(as.Rhs[0]) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj := info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			// plain `=` re-assignment to an existing local
			if _, isVar := obj.(*types.Var); isVar {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isSpanStartCall reports whether e is a call to a span starter method.
func isSpanStartCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && spanStarters[sel.Sel.Name]
}

// spanTransfer applies one CFG node to the open-span set: opens on
// span-start assignments, closes on End calls, deferred End calls, and
// every escaping use.
func spanTransfer(info *types.Info, tracked map[types.Object]bool, names map[string]string, n ast.Node, facts Facts) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && len(n.Lhs) == 1 && isSpanStartCall(n.Rhs[0]) {
			if id, ok := n.Lhs[0].(*ast.Ident); ok {
				if obj := spanObjOf(info, id); obj != nil && tracked[obj] {
					// Arguments of the start call may escape other spans.
					startCall := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
					args := make([]ast.Node, len(startCall.Args))
					for i, a := range startCall.Args {
						args[i] = a
					}
					spanScanUses(info, tracked, names, args, facts)
					key := spanKey(obj)
					names[key] = obj.Name()
					facts[key] = n.Rhs[0].Pos()
					return
				}
			}
		}
	case *ast.DeferStmt:
		spanDeferredCloses(info, tracked, n.Call, facts)
		return
	case *ast.GoStmt:
		// A goroutine that ends the span takes ownership; so does one
		// that merely captures it.
		spanDeferredCloses(info, tracked, n.Call, facts)
		return
	}
	spanScanUses(info, tracked, names, []ast.Node{n}, facts)
}

// spanDeferredCloses handles `defer x.End()`, `go x.End()` and
// deferred/spawned function literals: every tracked span whose End is
// called inside — or that is captured at all — is discharged.
func spanDeferredCloses(info *types.Info, tracked map[types.Object]bool, call *ast.CallExpr, facts Facts) {
	ast.Inspect(call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil && tracked[obj] {
			delete(facts, spanKey(obj))
		}
		return true
	})
}

// spanScanUses walks expression trees looking for uses of tracked span
// variables, closing the fact on End calls and on escaping uses. A use
// as the receiver of a method call (s.SetAttr, s.Child, s.Dump) and a
// nil comparison are neither: the span stays open and tracked.
func spanScanUses(info *types.Info, tracked map[types.Object]bool, names map[string]string, roots []ast.Node, facts Facts) {
	var walk func(n ast.Node, receiverOK bool)
	walk = func(n ast.Node, receiverOK bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// A non-deferred closure capturing the span takes ownership.
			spanDeferredCloses(info, tracked, &ast.CallExpr{Fun: n}, facts)
			return
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && tracked[obj] {
						if sel.Sel.Name == "End" {
							delete(facts, spanKey(obj))
						}
						// Method call on the span: receiver use, not an
						// escape; still scan the arguments.
						for _, a := range n.Args {
							walk(a, false)
						}
						return
					}
				}
			}
			walk(n.Fun, true)
			for _, a := range n.Args {
				walk(a, false)
			}
			return
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) && (isNilIdent(info, n.X) || isNilIdent(info, n.Y)) {
				return // nil check keeps the span tracked
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && tracked[obj] && !receiverOK {
				delete(facts, spanKey(obj)) // escape: ownership transferred
			}
			return
		}
		for _, c := range childNodes(n) {
			walk(c, false)
		}
	}
	for _, r := range roots {
		walk(r, false)
	}
}

// spanObjOf resolves an identifier to its object whether it defines or
// uses the variable.
func spanObjOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// spanKey is the stable fact key of a span variable.
func spanKey(obj types.Object) string {
	return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the flow layer of the analysis framework: an
// intraprocedural control-flow graph built directly over go/ast, with
// no golang.org/x/tools dependency. The CFG is deliberately small —
// straight-line statements share a block, and only control transfers
// (if/for/range/switch/select, return, break/continue/goto/fallthrough,
// panic) introduce edges — but it is precise about the constructs the
// flow analyzers care about:
//
//   - branch and loop edges, including labeled break and continue;
//   - a single synthetic normal Exit reached by returns and by falling
//     off the end of the body;
//   - a separate PanicExit reached by panic(...) calls, so analyzers
//     can choose to check "on all normal paths" without flagging code
//     after a deliberate panic (the documented soundness trade-off:
//     resources leaked only on panic paths are not reported — in this
//     codebase a panic is a crash, and deferred cleanup still runs);
//   - defer statements appear as ordinary nodes in their block; the
//     flow analyzers model "defer x.End()" as closing x at the point
//     the defer executes, which is sound for must-release properties
//     because the deferred call runs on every exit of any path that
//     executed the defer.
//
// Blocks list their nodes in execution order. Condition expressions of
// if/for/switch appear as nodes of the block that evaluates them, so a
// transfer function sees every expression that runs.

// Block is one basic block of a FuncCFG.
type Block struct {
	Index int        // position in FuncCFG.Blocks, stable across builds
	Nodes []ast.Node // statements and control expressions, in order
	Succs []*Block
	Preds []*Block
}

// addSucc wires b -> s once.
func (b *Block) addSucc(s *Block) {
	if b == nil || s == nil {
		return
	}
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// FuncCFG is the control-flow graph of one function body (a FuncDecl's
// or FuncLit's). Nested function literals are opaque values: their
// bodies get their own FuncCFG via BuildCFG, not edges in the parent's.
type FuncCFG struct {
	Entry     *Block
	Exit      *Block // normal exit: returns and falling off the end
	PanicExit *Block // abnormal exit: panic(...) statements
	Blocks    []*Block
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	g   *FuncCFG
	cur *Block // nil after an unconditional transfer (dead code)

	// break/continue resolution: innermost-first stacks of enclosing
	// targets, each optionally labeled.
	breaks    []branchTarget
	continues []branchTarget

	// goto resolution: label -> block starting at the labeled statement.
	labels map[string]*Block
	// gotos seen before their label: label -> source blocks to patch.
	pendingGotos map[string][]*Block
}

// branchTarget is one enclosing break or continue destination.
type branchTarget struct {
	label string // "" for unlabeled loops/switches
	block *Block
}

// BuildCFG constructs the CFG of a function body. A nil body (a
// declaration without implementation) yields a trivial entry==exit
// graph.
func BuildCFG(body *ast.BlockStmt) *FuncCFG {
	g := &FuncCFG{}
	b := &cfgBuilder{
		g:            g,
		labels:       make(map[string]*Block),
		pendingGotos: make(map[string][]*Block),
	}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	g.PanicExit = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end of the body reaches the normal exit.
	if b.cur != nil {
		b.cur.addSucc(g.Exit)
	}
	// Unresolved gotos (label declared later in a branch never built —
	// cannot happen in type-checked code, but stay robust): route to exit.
	for _, srcs := range b.pendingGotos {
		for _, src := range srcs {
			src.addSucc(g.Exit)
		}
	}
	return g
}

// newBlock appends a fresh block to the graph.
func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// emit records a node in the current block (no-op in dead code).
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// startBlock makes blk current, linking it from the previous current
// block when control can fall through.
func (b *cfgBuilder) startBlock(blk *Block) {
	if b.cur != nil {
		b.cur.addSucc(blk)
	}
	b.cur = blk
}

// stmtList lowers a statement sequence.
func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the name of the LabeledStmt
// directly wrapping s ("" when unlabeled), used to register labeled
// break/continue targets on loops and switches.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		// The labeled statement starts its own block so goto can target it.
		blk := b.newBlock()
		b.startBlock(blk)
		b.labels[s.Label.Name] = blk
		for _, src := range b.pendingGotos[s.Label.Name] {
			src.addSucc(blk)
		}
		delete(b.pendingGotos, s.Label.Name)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.emit(s.Cond)
		condBlk := b.cur
		after := b.newBlock()

		thenBlk := b.newBlock()
		condBlk.addSucc(thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body, "")
		if b.cur != nil {
			b.cur.addSucc(after)
		}

		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.addSucc(elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.cur.addSucc(after)
			}
		} else if condBlk != nil {
			condBlk.addSucc(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		if s.Cond != nil {
			head.addSucc(after) // condition false
		}
		body := b.newBlock()
		head.addSucc(body)
		b.pushLoop(label, after, post)
		b.cur = body
		b.stmt(s.Body, "")
		b.popLoop()
		if s.Post != nil {
			if b.cur != nil {
				b.cur.addSucc(post)
			}
			b.cur = post
			b.stmt(s.Post, "")
			if b.cur != nil {
				b.cur.addSucc(head)
			}
		} else if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		b.emit(s.X)
		head := b.newBlock()
		b.startBlock(head)
		if s.Key != nil {
			b.emit(s.Key)
		}
		if s.Value != nil {
			b.emit(s.Value)
		}
		after := b.newBlock()
		head.addSucc(after) // range exhausted
		body := b.newBlock()
		head.addSucc(body)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmt(s.Body, "")
		b.popLoop()
		if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchBody(s.Body, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.emit(s.Assign)
		b.switchBody(s.Body, label, false)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.ReturnStmt:
		b.emit(s)
		if b.cur != nil {
			b.cur.addSucc(b.g.Exit)
		}
		b.cur = nil

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s.X) {
			if b.cur != nil {
				b.cur.addSucc(b.g.PanicExit)
			}
			b.cur = nil
		}

	default:
		// Assignments, declarations, sends, go/defer, inc/dec, empty:
		// straight-line nodes.
		b.emit(s)
	}
}

// switchBody lowers the clause list shared by expression and type
// switches. fallthroughOK enables fallthrough edges (expression
// switches only; the parser rejects it elsewhere anyway).
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, fallthroughOK bool) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: after})

	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.addSucc(blk)
		if cc.List == nil {
			hasDefault = true
		}
		clauseBlocks = append(clauseBlocks, blk)
		clauses = append(clauses, cc)
	}
	if !hasDefault && head != nil {
		head.addSucc(after) // no case matched
	}
	for i, cc := range clauses {
		b.cur = clauseBlocks[i]
		for _, e := range cc.List {
			b.emit(e)
		}
		fellThrough := false
		for _, cs := range cc.Body {
			if bs, ok := cs.(*ast.BranchStmt); ok && bs.Tok == token.FALLTHROUGH && fallthroughOK {
				if b.cur != nil && i+1 < len(clauseBlocks) {
					b.cur.addSucc(clauseBlocks[i+1])
				}
				fellThrough = true
				b.cur = nil
				continue
			}
			b.stmt(cs, "")
		}
		if b.cur != nil && !fellThrough {
			b.cur.addSucc(after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// selectStmt lowers a select: every comm clause is a branch from the
// select head; a select without a default blocks, but the CFG shape is
// the same either way (blocking-ness is the analyzers' concern).
func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	b.emit(s) // the select itself is visible to transfer functions
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: after})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		if head != nil {
			head.addSucc(blk)
		}
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm, "")
		}
		for _, inner := range cc.Body {
			b.stmt(inner, "")
		}
		if b.cur != nil {
			b.cur.addSucc(after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// branchStmt lowers break/continue/goto (fallthrough is handled inside
// switchBody).
func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.emit(s)
	if b.cur == nil {
		return
	}
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breaks, label); t != nil {
			b.cur.addSucc(t)
		} else {
			b.cur.addSucc(b.g.Exit)
		}
	case token.CONTINUE:
		if t := findTarget(b.continues, label); t != nil {
			b.cur.addSucc(t)
		} else {
			b.cur.addSucc(b.g.Exit)
		}
	case token.GOTO:
		if t, ok := b.labels[label]; ok {
			b.cur.addSucc(t)
		} else {
			b.pendingGotos[label] = append(b.pendingGotos[label], b.cur)
		}
	}
	b.cur = nil
}

// pushLoop registers a loop's break and continue targets.
func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	b.continues = append(b.continues, branchTarget{label: label, block: cont})
}

// popLoop unregisters the innermost loop.
func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a break/continue label against a target stack:
// unlabeled picks the innermost, labeled the matching frame.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// isPanicCall reports whether the expression is a direct call to the
// panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the iteration order under which a forward dataflow pass
// over a reducible graph converges in few sweeps.
func (g *FuncCFG) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// LoopBlocks returns the set of blocks that lie on a cycle — i.e. are
// part of some loop body (including heads and post blocks). Computed
// with Tarjan's strongly-connected components over the reachable graph:
// a block loops iff its SCC has more than one member or it has a
// self-edge. goto-formed loops count, which is why this lives on the
// CFG instead of pattern-matching for/range syntax.
func (g *FuncCFG) LoopBlocks() map[*Block]bool {
	index := make(map[*Block]int)
	low := make(map[*Block]int)
	onStack := make(map[*Block]bool)
	var stack []*Block
	next := 0
	out := make(map[*Block]bool)

	var strongconnect func(v *Block)
	strongconnect = func(v *Block) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.Succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*Block
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				for _, w := range scc {
					out[w] = true
				}
			} else {
				w := scc[0]
				for _, s := range w.Succs {
					if s == w {
						out[w] = true
					}
				}
			}
		}
	}
	strongconnect(g.Entry)
	return out
}

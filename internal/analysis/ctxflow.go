package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces end-to-end context propagation on the serving and
// fault paths, where a severed context chain silently disables the
// cancellation ladder and per-request deadlines:
//
//  1. Everywhere: inside a function that receives a context.Context, a
//     context-accepting callee must be given a context derived from the
//     incoming one — passing context.Background()/context.TODO() (or a
//     variable rooted in one) severs the chain and is a finding.
//  2. In packages named serve or fault, and in functions named *Ctx in
//     any package (the core context-threaded entry points), calling
//     context.Background() or context.TODO() at all is a finding: these
//     are exactly the paths whose contract is "the caller's context
//     reaches the classifier". A deliberate lifecycle root detached
//     from any request carries a //shahinvet:allow ctxflow directive
//     with its reason, which keeps the inventory auditable.
//
// Derivation is tracked flow-insensitively to a fixpoint within one
// declaration (nested function literals included): ctx parameters seed
// the derived set; any call taking a derived context and returning a
// context (context.With*, obs.ContextWithSpan, ...) extends it, as does
// plain aliasing.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "require incoming contexts to be forwarded; forbid context.Background/TODO on serve, fault, and *Ctx paths",
	Run:  runCtxFlow,
}

// ctxFlowBanned reports whether the package bans Background/TODO
// outright (rule 2's package scope).
func ctxFlowBanned(path string) bool {
	last := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		last = path[i+1:]
	}
	return last == "serve" || last == "fault"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func runCtxFlow(pass *Pass) {
	banned := ctxFlowBanned(pass.Pkg.Path)
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxDecl(pass, info, fd, banned)
		}
	}
}

// checkCtxDecl analyses one top-level declaration (nested literals
// included, since they capture the declaration's context).
func checkCtxDecl(pass *Pass, info *types.Info, fd *ast.FuncDecl, bannedPkg bool) {
	params := ctxParams(info, fd)
	derived := make(map[types.Object]bool, len(params))
	for obj := range params {
		derived[obj] = true
	}
	severed := make(map[types.Object]bool)

	// Fixpoint over assignments: aliasing and ctx-returning calls
	// propagate both "derived from the incoming ctx" and "rooted in
	// Background/TODO".
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := spanObjOf(info, id)
				if obj == nil || !isContextType(obj.Type()) {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0] // multi-value call; arg flow decides
				}
				if rhs == nil {
					continue
				}
				if ctxExprDerived(info, rhs, derived) && !derived[obj] {
					derived[obj] = true
					changed = true
				}
				if ctxExprSevered(info, rhs, severed) && !severed[obj] {
					severed[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	hasCtxParam := len(params) > 0
	bannedFunc := bannedPkg || strings.HasSuffix(fd.Name.Name, "Ctx")
	reported := make(map[ast.Node]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 2: bare Background/TODO on banned paths.
		if name := backgroundCallName(info, call); name != "" && bannedFunc {
			where := "package " + lastSegment(pass.Pkg.Path)
			if !bannedPkg {
				where = fd.Name.Name + " (a *Ctx context-threaded path)"
			}
			reported[call] = true
			pass.Reportf(call.Pos(),
				"context.%s() inside %s severs the caller's cancellation chain; thread the incoming context instead", name, where)
			return true
		}
		// Rule 1: severed context handed to a context-accepting callee.
		if !hasCtxParam {
			return true
		}
		sig, ok := info.TypeOf(call.Fun).(*types.Signature)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() && !sig.Variadic() {
				break
			}
			pt := paramTypeAt(sig, i)
			if pt == nil || !isContextType(pt) {
				continue
			}
			if reported[ast.Unparen(arg)] {
				continue
			}
			if name := backgroundCallName(info, arg); name != "" {
				pass.Reportf(arg.Pos(),
					"context.%s() passed to %s while the enclosing function receives a context; forward the incoming context",
					name, types.ExprString(call.Fun))
				continue
			}
			if ctxExprSevered(info, arg, severed) && !ctxExprDerived(info, arg, derived) {
				pass.Reportf(arg.Pos(),
					"context rooted in context.Background/TODO passed to %s while the enclosing function receives a context; forward the incoming context",
					types.ExprString(call.Fun))
			}
		}
		return true
	})
}

// ctxParams collects the context.Context parameter objects of the
// declaration and of every nested function literal.
func ctxParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					out[obj] = true
				}
			}
		}
	}
	addFieldList(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addFieldList(lit.Type.Params)
		}
		return true
	})
	return out
}

// ctxExprDerived reports whether e evaluates to a context derived from
// the incoming one: a derived identifier, or a call any of whose
// arguments is derived (context.WithCancel(ctx), obs helpers, method
// calls on derived contexts).
func ctxExprDerived(info *types.Info, e ast.Expr, derived map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		return obj != nil && derived[obj]
	case *ast.CallExpr:
		for _, arg := range e.Args {
			if ctxExprDerived(info, arg, derived) {
				return true
			}
		}
		// Method call on a derived context (ctx.Value chains are not
		// contexts, but tc.Child()-style helpers hang off carriers).
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return ctxExprDerived(info, sel.X, derived)
		}
	}
	return false
}

// ctxExprSevered mirrors ctxExprDerived for Background/TODO roots.
func ctxExprSevered(info *types.Info, e ast.Expr, severed map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		return obj != nil && severed[obj]
	case *ast.CallExpr:
		if backgroundCallName(info, e) != "" {
			return true
		}
		for _, arg := range e.Args {
			if ctxExprSevered(info, arg, severed) {
				return true
			}
		}
	}
	return false
}

// backgroundCallName returns "Background" or "TODO" when e is a direct
// call to the corresponding context constructor, "" otherwise.
func backgroundCallName(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	if fn, ok := calleeFromPackage(info, call, "context"); ok {
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			return fn.Name()
		}
	}
	return ""
}

// paramTypeAt resolves the effective parameter type for argument i,
// unwrapping the variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if i < n-1 || (i < n && !sig.Variadic()) {
		return sig.Params().At(i).Type()
	}
	if n == 0 {
		return nil
	}
	last := sig.Params().At(n - 1).Type()
	if sig.Variadic() {
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
	}
	return last
}

// lastSegment returns the final path element of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// AllowAudit keeps the suppression inventory honest: a
// //shahinvet:allow directive that suppresses nothing is itself a
// finding. Directives accrete — the code they excused gets fixed or
// deleted, the comment stays — and every stale allow both misleads
// readers about which invariant the line supposedly violates and
// widens the hole for a future, real finding to slip through.
//
// The audit runs after every other analyzer in the same invocation and
// reports:
//
//   - a directive naming an analyzer that ran but suppressed no
//     finding of that analyzer (stale);
//   - a directive naming an analyzer that does not exist (typo or
//     removed check);
//   - a shahinvet:allow comment that names no analyzers at all
//     (malformed — it suppresses nothing by construction).
//
// Analyzer names excluded from the invocation by -run are not audited
// for staleness: their findings were never computed, so "unused" would
// be meaningless. A deliberate exception can be kept with
// //shahinvet:allow allowaudit on the directive's own line, though the
// honest fix is deleting the stale directive.
var AllowAudit = &Analyzer{
	Name: "allowaudit",
	Doc:  "flag //shahinvet:allow directives that suppress nothing, name unknown analyzers, or are malformed",
}

// Run is attached in init: runAllowAudit consults All() for the known
// analyzer set, and a direct reference in the composite literal would
// form an initialization cycle (All lists AllowAudit).
func init() {
	AllowAudit.Run = runAllowAudit
}

func runAllowAudit(pass *Pass) {
	known := make(map[string]bool)
	for _, an := range All() {
		known[an.Name] = true
	}
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				auditDirective(pass, known, c.Pos(), c.Text)
			}
		}
	}
}

// auditDirective checks one comment; non-directives are ignored.
func auditDirective(pass *Pass, known map[string]bool, pos token.Pos, text string) {
	if !isDirectiveComment(text) {
		return
	}
	names, ok := parseDirective(text)
	if !ok {
		pass.Reportf(pos, "shahinvet:allow directive names no analyzers and suppresses nothing; name the analyzers or delete it")
		return
	}
	position := pass.Pkg.Fset.Position(pos)
	file := pass.Pkg.relFile(position.Filename)
	for _, name := range sortedNames(names) {
		if !known[name] {
			pass.Reportf(pos, "shahinvet:allow names unknown analyzer %q; fix the name or delete it (have %s)", name, analyzerNames())
			continue
		}
		if name == "allowaudit" {
			continue // self-reference: the suppression mechanism itself
		}
		if !pass.ran[name] {
			continue // excluded by -run this invocation; staleness unknowable
		}
		if !pass.usage[directiveUse{file: file, line: position.Line, analyzer: name}] {
			pass.Reportf(pos, "shahinvet:allow %s suppresses no %s finding; the directive is stale — delete it", name, name)
		}
	}
}

// isDirectiveComment reports whether the comment is a shahinvet:allow
// directive, well-formed or not.
func isDirectiveComment(text string) bool {
	if !strings.HasPrefix(text, "//") {
		return false
	}
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, directivePrefix) {
		return false
	}
	rest := body[len(directivePrefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// sortedNames returns the directive's analyzer names in stable order.
func sortedNames(names map[string]bool) []string {
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

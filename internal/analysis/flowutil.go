package analysis

import "go/ast"

// forEachFuncBody visits every analyzable function body in the
// package: each top-level declaration with a body, and each function
// literal nested inside one (literals are opaque to the enclosing
// CFG, so flow analyzers treat each as its own unit). The visit
// callback receives the enclosing declaration for position context —
// for a literal, that is the declaration it is lexically inside.
func forEachFuncBody(pkg *Package, visit func(fd *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(fd, lit.Body)
				}
				return true
			})
		}
	}
}

// childNodes returns the direct (depth-1) AST children of n, in
// source order. Used by walkers that need custom descent control a
// plain ast.Inspect cannot express.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	depth := 0
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			depth--
			return true
		}
		depth++
		if depth > 1 {
			out = append(out, c)
			depth-- // not descending, so no closing nil callback comes
			return false
		}
		return true
	})
	return out
}

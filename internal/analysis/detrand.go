package analysis

import (
	"go/ast"
)

// DetRand bans the two randomness patterns that break run-for-run
// reproducibility: calls to math/rand's package-level functions (which
// draw from the shared global source) and sources seeded from the wall
// clock. The pipeline's design threads one explicitly seeded
// *rand.Rand from Options.Seed (see internal/sample), so identical
// seeds must yield identical explanations.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid the global math/rand source and clock-seeded RNGs",
	Run:  runDetRand,
}

// detrandConstructors create explicit sources or derived generators;
// they are fine as long as the seed is not the clock.
var detrandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDetRand(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeFromPackage(info, call, "math/rand")
			if !ok {
				fn, ok = calleeFromPackage(info, call, "math/rand/v2")
				if !ok {
					return true
				}
			}
			if detrandConstructors[fn.Name()] {
				for _, arg := range call.Args {
					if containsCallTo(info, arg, "time", "Now") {
						pass.Reportf(call.Pos(),
							"rand.%s seeded from the wall clock; derive the seed from Options.Seed so runs are reproducible", fn.Name())
						break
					}
				}
				return true
			}
			pass.Reportf(call.Pos(),
				"rand.%s uses the global RNG; thread an explicitly seeded *rand.Rand instead", fn.Name())
			return true
		})
	}
}

package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
)

// Check loads the packages matching patterns under the module rooted
// at dir and runs the given analyzers (nil means the full suite) over
// each, returning all surviving findings sorted by position. Test
// files are excluded; CheckTests includes them.
func Check(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return check(dir, patterns, analyzers, false)
}

// CheckTests is Check with each package's in-package _test.go files
// included in the analyzed unit (the -tests flag of shahin-vet).
func CheckTests(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return check(dir, patterns, analyzers, true)
}

func check(dir string, patterns []string, analyzers []*Analyzer, includeTests bool) ([]Diagnostic, error) {
	modPath, err := ReadModulePath(dir)
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(dir, modPath)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = includeTests
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if analyzers == nil {
		analyzers = All()
	}
	paths, err := loader.Packages(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			return nil, err
		}
		diags = append(diags, RunPackage(pkg, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// Main is the shahin-vet entry point. It returns the process exit
// code: 0 clean, 1 findings, 2 usage or load errors.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shahin-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	dir := fs.String("dir", ".", "module root to analyze")
	run := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: shahin-vet [flags] [packages]\n\n"+
			"Runs shahin's project-specific analyzers over the module.\n"+
			"Patterns follow go tool conventions (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, an := range All() {
			fmt.Fprintf(stdout, "%-10s %s\n", an.Name, an.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*run)
	if err != nil {
		fmt.Fprintln(stderr, "shahin-vet:", err)
		return 2
	}
	diags, err := check(*dir, fs.Args(), analyzers, *tests)
	if err != nil {
		fmt.Fprintln(stderr, "shahin-vet:", err)
		return 2
	}
	if *jsonOut {
		if diags == nil {
			diags = []Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "shahin-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves a comma-separated -run list against the
// suite; the empty string selects everything.
func selectAnalyzers(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, an := range All() {
		byName[an.Name] = an
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		an, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, analyzerNames())
		}
		out = append(out, an)
	}
	return out, nil
}

func analyzerNames() string {
	var names []string
	for _, an := range All() {
		names = append(names, an.Name)
	}
	return strings.Join(names, ", ")
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NilRecv mechanically enforces the obs layer's documented contract:
// every exported pointer-receiver method is a no-op on a nil receiver,
// so pipeline code can instrument unconditionally and a run without a
// recorder pays nothing. Concretely: in packages named obs, no
// exported pointer-receiver method may touch a receiver field before a
// `recv == nil` / `recv != nil` comparison appears. Methods that only
// delegate to other (themselves guarded) methods need no guard —
// calling a method on a nil pointer is legal; reading its fields is
// the panic.
var NilRecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "require nil-receiver guards on exported pointer-receiver methods in obs packages",
	Run:  runNilRecv,
}

// nilRecvApplies limits the invariant to observability packages.
func nilRecvApplies(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

func runNilRecv(pass *Pass) {
	if !nilRecvApplies(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Recv() == nil {
				continue
			}
			if _, ok := sig.Recv().Type().(*types.Pointer); !ok {
				continue // value receivers cannot be nil pointers
			}
			checkNilGuard(pass, fd)
		}
	}
}

func checkNilGuard(pass *Pass, fd *ast.FuncDecl) {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return // receiver unnamed: its fields cannot be touched
	}
	recv := pass.Pkg.Info.Defs[names[0]]
	if recv == nil {
		return
	}
	info := pass.Pkg.Info

	guardPos := token.NoPos
	usePos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) && isNilComparison(info, n, recv) {
				if !guardPos.IsValid() || n.Pos() < guardPos {
					guardPos = n.Pos()
				}
			}
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || info.Uses[id] != recv {
				return true
			}
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if !usePos.IsValid() || n.Pos() < usePos {
					usePos = n.Pos()
				}
			}
		}
		return true
	})
	if !usePos.IsValid() {
		return // no field access: nil-safe by construction
	}
	if guardPos.IsValid() && guardPos < usePos {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported method %s dereferences receiver %s before a nil guard; the obs layer documents nil receivers as no-ops",
		fd.Name.Name, names[0].Name)
}

// isNilComparison reports whether the binary expression compares the
// receiver object against nil.
func isNilComparison(info *types.Info, be *ast.BinaryExpr, recv types.Object) bool {
	matches := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, ok = info.Uses[id].(*types.Nil)
		return ok
	}
	return (matches(be.X) && isNil(be.Y)) || (matches(be.Y) && isNil(be.X))
}

package analysis

import (
	"go/ast"
	"strings"
)

// WallTime keeps wall-clock reads confined to the observability and
// benchmark layers. Everywhere else a time.Now call either feeds
// timing into results (breaking determinism) or is stage accounting
// that belongs to the obs/report layer; legitimate sites outside those
// packages carry a //shahinvet:allow walltime annotation, which keeps
// the full inventory of clock reads greppable.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "confine time.Now to internal/obs, internal/bench, and annotated sites",
	Run:  runWallTime,
}

// wallTimeExempt reports whether a package may read the clock freely.
func wallTimeExempt(path string) bool {
	for _, suffix := range []string{"internal/obs", "internal/bench"} {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

func runWallTime(pass *Pass) {
	if wallTimeExempt(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := calleeFromPackage(info, call, "time"); ok && fn.Name() == "Now" {
				pass.Reportf(call.Pos(),
					"time.Now outside the obs/bench layer; route timing through obs or annotate the site with //shahinvet:allow walltime")
			}
			return true
		})
	}
}

// Package analysis is shahin's project-specific static-analysis suite,
// built from scratch on the stdlib go/parser + go/ast + go/types stack
// (no golang.org/x/tools dependency). It enforces the invariants the
// reproduction's headline claim rests on — bit-for-bit deterministic
// explanations — plus the error-handling and nil-recorder conventions
// the codebase documents:
//
//   - detrand: no top-level math/rand calls (RNGs are seeded and
//     threaded explicitly) and no clock-seeded sources.
//   - maporder: no map-iteration order leaking into slices or strings
//     that reach results without a dominating sort.
//   - walltime: time.Now confined to internal/obs, internal/bench, and
//     explicitly annotated sites.
//   - errcheck: no silently discarded error returns.
//   - nilrecv: every exported pointer-receiver method in the obs layer
//     guards the receiver against nil before touching its fields.
//   - pkgdoc: every package has a package comment and every exported
//     identifier a doc comment, so godoc stays complete as the API
//     grows.
//
// On top of the single-node checks sits a lightweight flow framework
// (cfg.go, dataflow.go, callgraph.go): an intraprocedural CFG over
// go/ast, a forward may-analysis engine, and a package-level call
// graph. Four analyzers use it:
//
//   - ctxflow: incoming contexts must be forwarded to context-accepting
//     callees; context.Background/TODO is forbidden on serve, fault,
//     and *Ctx paths.
//   - spanend: every StartSpan/StartDetachedSpan result is ended on all
//     normal control-flow paths or explicitly handed off.
//   - lockguard: no mutex copies, no lock leaked on any path, no
//     blocking operation (channels, network, PredictCtx, Sleep) while a
//     lock is held.
//   - hotalloc: functions tagged //shahin:hotpath may not contain
//     fmt.Sprintf-style formatting, uncapped appends in loops,
//     interface boxing, or capturing closures in loops.
//
// A fifth, allowaudit, audits the suppression inventory itself: a
// //shahinvet:allow directive that suppresses nothing is a finding.
//
// Findings can be suppressed per line with a
//
//	//shahinvet:allow <analyzer> [<analyzer>...] [— reason]
//
// comment on the offending line or on the line directly above it.
// The cmd/shahin-vet command is the CLI driver; the package-level
// tests run every analyzer over fixture packages and over the real
// module, so a regression in either the analyzers or the codebase
// fails go test ./... .
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a violated invariant at a source position.
// File is relative to the module root the driver was pointed at.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the go-vet-style "file:line:col: analyzer: message"
// form used by the text output mode.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full suite in a stable order. The flow-aware checks
// (ctxflow, spanend, lockguard, hotalloc) run on the CFG/dataflow
// framework in cfg.go; allowaudit always executes last within an
// invocation so it can see which directives the others consumed.
func All() []*Analyzer {
	return []*Analyzer{
		AllowAudit, CtxFlow, DetRand, ErrCheck, HotAlloc, LockGuard,
		MapOrder, NilRecv, PkgDoc, SpanEnd, WallTime,
	}
}

// directiveUse identifies one (directive line, analyzer) suppression:
// the unit allowaudit checks for staleness.
type directiveUse struct {
	file     string
	line     int
	analyzer string
}

// Pass is one (analyzer, package) run. Analyzers report findings
// through Reportf, which applies the //shahinvet:allow suppression
// rules before recording anything.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	allow map[string]map[int]bool // file -> lines with an allow directive
	diags []Diagnostic

	// usage records which directive lines suppressed a finding, shared
	// across the invocation's passes; ran is the set of analyzer names
	// executed before allowaudit. Both feed the staleness audit.
	usage map[directiveUse]bool
	ran   map[string]bool
}

// Reportf records a finding at pos unless a directive suppresses it,
// in which case the consumed directive line is marked used.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	file := p.Pkg.relFile(position.Filename)
	if lines := p.allow[file]; lines[position.Line] || lines[position.Line-1] {
		if p.usage != nil {
			used := position.Line
			if !lines[position.Line] {
				used = position.Line - 1
			}
			p.usage[directiveUse{file: file, line: used, analyzer: p.Analyzer.Name}] = true
		}
		return
	}
	p.diags = append(p.diags, Diagnostic{
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunPackage runs the given analyzers over one loaded package and
// returns the surviving findings sorted by position. allowaudit, if
// selected, runs after every other analyzer regardless of its slice
// position, so directive-usage information is complete when it audits.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	usage := make(map[directiveUse]bool)
	ran := make(map[string]bool)
	var audit *Analyzer
	ordered := make([]*Analyzer, 0, len(analyzers))
	for _, an := range analyzers {
		if an.Name == AllowAudit.Name {
			audit = an
			continue
		}
		ordered = append(ordered, an)
		ran[an.Name] = true
	}
	if audit != nil {
		ordered = append(ordered, audit)
	}
	var diags []Diagnostic
	for _, an := range ordered {
		pass := &Pass{
			Analyzer: an,
			Pkg:      pkg,
			allow:    pkg.directiveLines(an.Name),
			usage:    usage,
			ran:      ran,
		}
		an.Run(pass)
		diags = append(diags, pass.diags...)
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// directivePrefix introduces a suppression comment. The directive
// applies to its own line and to the line directly below it, so both
// trailing comments and a comment above the offending statement work.
const directivePrefix = "shahinvet:allow"

// directiveLines extracts, per file, the lines carrying an allow
// directive naming the given analyzer.
func (pkg *Package) directiveLines(analyzer string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok || !names[analyzer] {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				file := pkg.relFile(position.Filename)
				if out[file] == nil {
					out[file] = make(map[int]bool)
				}
				out[file][position.Line] = true
			}
		}
	}
	return out
}

// parseDirective parses a "//shahinvet:allow a b — reason" comment into
// the set of analyzer names it names. Name tokens stop at the first
// field that is not a plausible analyzer name, so free-form rationale
// after the names (or after a dash) is fine.
func parseDirective(text string) (map[string]bool, bool) {
	if !strings.HasPrefix(text, "//") {
		return nil, false
	}
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, directivePrefix) {
		return nil, false
	}
	rest := body[len(directivePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	names := make(map[string]bool)
	for _, field := range strings.Fields(rest) {
		field = strings.TrimSuffix(field, ",")
		if !isAnalyzerName(field) {
			break
		}
		names[field] = true
	}
	return names, len(names) > 0
}

func isAnalyzerName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// staticCallee resolves the called *types.Func of a call expression,
// or nil for calls through function values, builtins, and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// calleeFromPackage reports whether call statically resolves to a
// package-level function (not a method) of the given package path.
func calleeFromPackage(info *types.Info, call *ast.CallExpr, pkgPath string) (*types.Func, bool) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil, false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil, false
	}
	return fn, true
}

var errorType = types.Universe.Lookup("error").Type()

// hasErrorResult reports whether the call's type includes an error.
func hasErrorResult(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false // builtin, conversion, or untypeable
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// containsCallTo reports whether the expression tree contains a call to
// the named package-level function (e.g. time.Now inside a seed
// expression).
func containsCallTo(info *types.Info, expr ast.Expr, pkgPath, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := calleeFromPackage(info, call, pkgPath); ok && fn.Name() == name {
			found = true
			return false
		}
		return true
	})
	return found
}

package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoSelfClean runs the full analyzer suite over the real module
// from go test ./..., so any new violation of the determinism,
// error-handling, or nil-recorder invariants — or any annotation that
// stops parsing — fails tier-1 immediately.
func TestRepoSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Check(root, []string{"./..."}, nil)
	if err != nil {
		t.Fatalf("loading the module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or annotate with //shahinvet:allow <analyzer>", len(diags))
	}
}

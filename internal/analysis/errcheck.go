package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags statements that silently discard an error result —
// the classic lost csv.Writer.Flush or File.Close in round-trip code.
// Explicitly assigning to the blank identifier is allowed (the discard
// is visible in review); so are the fmt printing helpers and the
// in-memory writers (strings.Builder, bytes.Buffer) whose errors are
// structurally impossible.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "forbid silently discarded error returns",
	Run:  runErrCheck,
}

// errcheckExemptReceivers never fail their write methods.
var errcheckExemptReceivers = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = stmt.Call
			case *ast.DeferStmt:
				call = stmt.Call
			}
			if call == nil || !hasErrorResult(info, call) || errcheckExemptCall(info, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s's error result is discarded; handle it or annotate the call with //shahinvet:allow errcheck", types.ExprString(call.Fun))
			return true
		})
	}
}

// errcheckExemptCall reports whether the call is on the exempt list:
// any fmt function, or a method on an in-memory writer.
func errcheckExemptCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return errcheckExemptReceivers[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks one package under testdata/src in fixture
// mode (every import resolves as standard library).
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "src"), "")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

var wantRE = regexp.MustCompile(`want "([^"]*)"`)

// parseWants extracts the expected-diagnostic comments: every
// `want "substring"` marker, keyed by file and line.
func parseWants(pkg *Package) map[string][]string {
	wants := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pkg.relFile(pos.Filename), pos.Line)
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	return wants
}

// TestAnalyzersGolden runs each analyzer over its fixture package and
// requires an exact match against the want-comments: every expected
// diagnostic fires (so weakening an analyzer fails the test) and
// nothing unexpected or suppressed leaks through.
func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		name      string
		fixture   string
		analyzers []*Analyzer
	}{
		{"detrand", "detrand", []*Analyzer{DetRand}},
		{"maporder", "maporder", []*Analyzer{MapOrder}},
		{"walltime", "walltime", []*Analyzer{WallTime}},
		{"errcheck", "errcheck", []*Analyzer{ErrCheck}},
		{"nilrecv", "obs", []*Analyzer{NilRecv}},
		{"pkgdoc", "pkgdoc", []*Analyzer{PkgDoc}},
		{"ctxflow", "ctxflow", []*Analyzer{CtxFlow}},
		{"ctxflow-serve", "ctxflow/serve", []*Analyzer{CtxFlow}},
		{"spanend", "spanend", []*Analyzer{SpanEnd}},
		{"lockguard", "lockguard", []*Analyzer{LockGuard}},
		{"hotalloc", "hotalloc", []*Analyzer{HotAlloc}},
		// allowaudit needs a companion analyzer so one directive in the
		// fixture is genuinely consumed (a used directive is the
		// deliberate non-finding).
		{"allowaudit", "allowaudit", []*Analyzer{ErrCheck, AllowAudit}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.fixture)
			diags := RunPackage(pkg, tc.analyzers)
			wants := parseWants(pkg)

			matched := make(map[string]int)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.File, d.Line)
				ok := false
				for _, w := range wants[key] {
					if strings.Contains(d.Analyzer+": "+d.Message, w) {
						ok = true
						matched[key]++
						break
					}
				}
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key, ws := range wants {
				if matched[key] < len(ws) {
					t.Errorf("%s: expected diagnostic matching %q did not fire", key, ws)
				}
			}
			if len(diags) == 0 {
				t.Errorf("fixture %s produced no diagnostics at all; detection logic gutted?", tc.fixture)
			}
		})
	}
}

// TestDirectiveParsing pins the suppression comment grammar.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//shahinvet:allow walltime", []string{"walltime"}},
		{"// shahinvet:allow walltime — stage timing", []string{"walltime"}},
		{"//shahinvet:allow errcheck, walltime — trailing reason", []string{"errcheck", "walltime"}},
		{"//shahinvet:allowwalltime", nil},
		{"//shahinvet:allow", nil},
		{"// a normal comment", nil},
		{"//shahinvet:allow Weird42 walltime", nil}, // names stop at first non-name token
	}
	for _, tc := range cases {
		names, ok := parseDirective(tc.text)
		if !ok {
			if len(tc.want) != 0 {
				t.Errorf("parseDirective(%q) = not a directive, want %v", tc.text, tc.want)
			}
			continue
		}
		if len(names) != len(tc.want) {
			t.Errorf("parseDirective(%q) = %v, want %v", tc.text, names, tc.want)
			continue
		}
		for _, w := range tc.want {
			if !names[w] {
				t.Errorf("parseDirective(%q) missing %q", tc.text, w)
			}
		}
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (_test.go) are excluded by default: the
// invariants guard the production pipeline, and fixtures deliberately
// violate them. Setting Loader.IncludeTests pulls in a package's
// in-package test files too (external _test packages stay out — they
// are separate compilation units the recursive loader cannot layer on
// top of an already-checked package).
type Package struct {
	Path  string // import path ("shahin/internal/fim")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	root string // module root; Diagnostic.File is relative to it
}

// relFile maps an absolute filename to its module-relative form.
func (pkg *Package) relFile(filename string) string {
	if rel, err := filepath.Rel(pkg.root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Loader loads module packages from source. Imports inside the module
// are resolved recursively through the loader itself; everything else
// (the standard library) goes through go/importer's source importer,
// so the whole stack stays free of toolchain export-data files.
type Loader struct {
	fset       *token.FileSet
	dir        string // module root (absolute)
	modulePath string // module path from go.mod; "" loads bare fixture dirs
	std        types.Importer

	// IncludeTests adds each package's in-package _test.go files to the
	// unit under analysis. Set it before the first Load call: results
	// are memoized, so flipping it later has no effect on packages
	// already loaded.
	IncludeTests bool

	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at dir. modulePath is the module's
// import-path prefix (from go.mod); the empty string puts the loader
// in fixture mode, where package paths are directories relative to dir
// and every import is resolved as standard library.
func NewLoader(dir, modulePath string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving %s: %w", dir, err)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		dir:        abs,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// ReadModulePath extracts the module path from dir/go.mod.
func ReadModulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// inModule reports whether path belongs to the module under analysis.
func (l *Loader) inModule(path string) bool {
	if l.modulePath == "" {
		return false
	}
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// dirFor maps an import path of the module to its directory.
func (l *Loader) dirFor(path string) string {
	switch {
	case l.modulePath == "":
		return filepath.Join(l.dir, filepath.FromSlash(path))
	case path == l.modulePath:
		return l.dir
	default:
		return filepath.Join(l.dir, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath+"/")))
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.dir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal imports
// load recursively through this loader, the rest through the source
// importer (which needs srcDir for GOROOT vendor resolution).
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if l.inModule(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if from, ok := l.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, srcDir, mode)
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the given import path
// (module-relative directory in fixture mode). Results are memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	var testNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			if l.IncludeTests {
				testNames = append(testNames, name)
			}
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	// In-package test files join the same type-checking unit; external
	// _test packages are skipped by comparing the package clause.
	for _, name := range testNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if f.Name.Name != files[0].Name.Name {
			continue
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		root:  l.dir,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Packages expands go-style patterns ("./...", "./internal/...",
// "./internal/fim", "shahin/internal/fim", ".") into the sorted set of
// matching package import paths.
func (l *Loader) Packages(patterns []string) ([]string, error) {
	all, err := l.walkPackages()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := l.patternPath(strings.TrimSuffix(pat, "/..."))
			matched := false
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("analysis: pattern %s matched no packages", pat)
			}
		default:
			p := l.patternPath(pat)
			found := false
			for _, known := range all {
				if known == p {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("analysis: no package matches %s", pat)
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// patternPath normalizes a single non-wildcard pattern to an import
// path.
func (l *Loader) patternPath(pat string) string {
	if pat == "." {
		return l.modulePath
	}
	if rest, ok := strings.CutPrefix(pat, "./"); ok {
		if l.modulePath == "" {
			return path.Clean(rest)
		}
		return l.modulePath + "/" + path.Clean(rest)
	}
	return pat
}

// walkPackages enumerates every package directory of the module,
// skipping testdata, vendor, and hidden trees.
func (l *Loader) walkPackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(p)
		if err != nil {
			return err
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.dir, p)
		if err != nil {
			return err
		}
		switch {
		case rel == ".":
			if l.modulePath != "" {
				out = append(out, l.modulePath)
			}
		case l.modulePath == "":
			out = append(out, filepath.ToSlash(rel))
		default:
			out = append(out, l.modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	sort.Strings(out)
	return out, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		return true, nil
	}
	return false, nil
}

// Package gbt implements gradient-boosted decision trees for binary
// classification with logistic loss (stochastic gradient boosting with
// Newton leaf values). Together with the random forest and naive Bayes it
// gives the experiments a spread of black-box models with very different
// decision surfaces, supporting the paper's claim that Shahin's speedups
// are classifier-independent.
package gbt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"shahin/internal/dataset"
	"shahin/internal/rf"
)

// Config controls training. Zero values select the noted defaults.
type Config struct {
	Rounds       int     // boosting rounds (default 50)
	LearningRate float64 // shrinkage ν (default 0.1)
	MaxDepth     int     // per-tree depth (default 3)
	MinLeaf      int     // minimum samples per leaf (default 5)
	Subsample    float64 // row subsampling per round (default 0.8)
	Seed         int64
}

func (c Config) fill() Config {
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.LearningRate <= 0 || c.LearningRate > 1 {
		c.LearningRate = 0.1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 0.8
	}
	return c
}

// Model is a fitted boosted ensemble for binary classification.
type Model struct {
	Bias  float64 // initial log-odds
	Trees []RegTree
	Rate  float64
}

var _ rf.Classifier = (*Model)(nil)

// Train fits the model on a labelled binary dataset.
func Train(d *dataset.Dataset, cfg Config) (*Model, error) {
	if d.Labels == nil {
		return nil, fmt.Errorf("gbt: training data has no labels")
	}
	if d.Schema.NumClasses() != 2 {
		return nil, fmt.Errorf("gbt: binary classification only, schema has %d classes", d.Schema.NumClasses())
	}
	n := d.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("gbt: empty training data")
	}
	cfg = cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))

	pos := 0
	for _, l := range d.Labels {
		pos += l
	}
	// Clamped so single-class data stays finite.
	p0 := math.Min(math.Max(float64(pos)/float64(n), 1e-6), 1-1e-6)
	m := &Model{Bias: math.Log(p0 / (1 - p0)), Rate: cfg.LearningRate}

	f := make([]float64, n) // current raw scores
	for i := range f {
		f[i] = m.Bias
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < n; i++ {
			p := sigmoid(f[i])
			grad[i] = float64(d.Labels[i]) - p
			hess[i] = p * (1 - p)
		}
		idx := subsample(rng, n, cfg.Subsample)
		tree := growRegTree(d.Cols, grad, hess, idx, cfg.MaxDepth, cfg.MinLeaf)
		m.Trees = append(m.Trees, tree)
		row := make([]float64, d.NumAttrs())
		for i := 0; i < n; i++ {
			row = d.Row(i, row)
			f[i] += cfg.LearningRate * tree.predict(row)
		}
	}
	return m, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func subsample(rng *rand.Rand, n int, frac float64) []int {
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// NumClasses implements rf.Classifier.
func (m *Model) NumClasses() int { return 2 }

// Predict implements rf.Classifier.
func (m *Model) Predict(x []float64) int {
	if m.Score(x) > 0 {
		return 1
	}
	return 0
}

// Score returns the raw log-odds for x.
func (m *Model) Score(x []float64) float64 {
	s := m.Bias
	for i := range m.Trees {
		s += m.Rate * m.Trees[i].predict(x)
	}
	return s
}

// Prob returns P(class=1 | x).
func (m *Model) Prob(x []float64) float64 { return sigmoid(m.Score(x)) }

// Accuracy returns the fraction of rows classified correctly.
func (m *Model) Accuracy(d *dataset.Dataset) float64 {
	if d.NumRows() == 0 {
		return 0
	}
	correct := 0
	row := make([]float64, d.NumAttrs())
	for i := 0; i < d.NumRows(); i++ {
		row = d.Row(i, row)
		if m.Predict(row) == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.NumRows())
}

// MaxDepth returns the depth of the deepest tree in the ensemble (a
// root-only tree has depth 0). The exact TreeSHAP walker sizes its path
// arena with it.
func (m *Model) MaxDepth() int {
	max := 0
	for i := range m.Trees {
		if d := m.Trees[i].depth(0); d > max {
			max = d
		}
	}
	return max
}

// NumTrees returns the number of boosting rounds fitted.
func (m *Model) NumTrees() int { return len(m.Trees) }

// RegTree is a regression tree in flat-array form fitting a Newton step:
// leaf value = Σ grad / (Σ hess + λ). It is exported so structure-aware
// explainers (internal/explain/exact) can walk the fitted trees.
type RegTree struct {
	Nodes []RegNode
}

// depth returns the depth of the subtree rooted at node i.
func (t *RegTree) depth(i int32) int {
	nd := &t.Nodes[i]
	if nd.Feature < 0 {
		return 0
	}
	l, r := t.depth(nd.Left), t.depth(nd.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// RegNode is one flat-array tree node; Feature -1 marks a leaf.
type RegNode struct {
	Feature   int32 // -1 for leaves
	Threshold float64
	Left      int32
	Right     int32
	Value     float64 // leaf value
}

func (t *RegTree) predict(x []float64) float64 {
	i := int32(0)
	for {
		nd := &t.Nodes[i]
		if nd.Feature < 0 {
			return nd.Value
		}
		if x[nd.Feature] <= nd.Threshold {
			i = nd.Left
		} else {
			i = nd.Right
		}
	}
}

const lambda = 1.0 // leaf regularisation

// growRegTree builds one tree on the subsampled indices, greedily
// maximising the gain of the Newton objective.
func growRegTree(cols [][]float64, grad, hess []float64, idx []int, maxDepth, minLeaf int) RegTree {
	b := &regBuilder{cols: cols, grad: grad, hess: hess, maxDepth: maxDepth, minLeaf: minLeaf}
	b.build(idx, 0)
	return RegTree{Nodes: b.nodes}
}

type regBuilder struct {
	cols       [][]float64
	grad, hess []float64
	maxDepth   int
	minLeaf    int
	nodes      []RegNode
}

func (b *regBuilder) build(idx []int, depth int) int32 {
	var sumG, sumH float64
	for _, i := range idx {
		sumG += b.grad[i]
		sumH += b.hess[i]
	}
	leafValue := sumG / (sumH + lambda)

	if depth >= b.maxDepth || len(idx) < 2*b.minLeaf {
		return b.leaf(leafValue)
	}
	feat, thr, ok := b.bestSplit(idx, sumG, sumH)
	if !ok {
		return b.leaf(leafValue)
	}
	lo, hi := 0, len(idx)
	for lo < hi {
		if b.cols[feat][idx[lo]] <= thr {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo == 0 || lo == len(idx) {
		return b.leaf(leafValue)
	}
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, RegNode{Feature: int32(feat), Threshold: thr})
	left := b.build(idx[:lo], depth+1)
	right := b.build(idx[lo:], depth+1)
	b.nodes[self].Left = left
	b.nodes[self].Right = right
	return self
}

func (b *regBuilder) leaf(value float64) int32 {
	i := int32(len(b.nodes))
	b.nodes = append(b.nodes, RegNode{Feature: -1, Value: value})
	return i
}

// bestSplit scans every feature for the threshold with the highest Newton
// gain: G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ).
func (b *regBuilder) bestSplit(idx []int, sumG, sumH float64) (feat int, thr float64, ok bool) {
	parent := sumG * sumG / (sumH + lambda)
	bestGain := 1e-12
	order := make([]int, len(idx))
	for f := range b.cols {
		col := b.cols[f]
		copy(order, idx)
		sort.Slice(order, func(i, j int) bool { return col[order[i]] < col[order[j]] })
		var gl, hl float64
		for i := 0; i < len(order)-1; i++ {
			gl += b.grad[order[i]]
			hl += b.hess[order[i]]
			v, next := col[order[i]], col[order[i+1]]
			if v == next {
				continue
			}
			nl := i + 1
			if nl < b.minLeaf || len(order)-nl < b.minLeaf {
				continue
			}
			gr, hr := sumG-gl, sumH-hl
			gain := gl*gl/(hl+lambda) + gr*gr/(hr+lambda) - parent
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = v + (next-v)/2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

package gbt

import (
	"math"
	"math/rand"
	"testing"

	"shahin/internal/datagen"
	"shahin/internal/dataset"
)

func xorData(n int, seed int64) *dataset.Dataset {
	s := &dataset.Schema{
		Attrs: []dataset.Attr{
			{Name: "x0", Kind: dataset.Numeric},
			{Name: "x1", Kind: dataset.Numeric},
		},
		Classes: []string{"neg", "pos"},
	}
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(s, n)
	for i := 0; i < n; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		label := 0
		if (x0 > 0) != (x1 > 0) {
			label = 1
		}
		d.AppendRow([]float64{x0, x1}, label)
	}
	return d
}

func TestTrainErrors(t *testing.T) {
	d := xorData(50, 1)
	d.Labels = nil
	if _, err := Train(d, Config{}); err == nil {
		t.Fatal("unlabelled data accepted")
	}
	multi := &dataset.Schema{
		Attrs:   []dataset.Attr{{Name: "x", Kind: dataset.Numeric}},
		Classes: []string{"a", "b", "c"},
	}
	md := dataset.New(multi, 2)
	md.AppendRow([]float64{1}, 0)
	md.AppendRow([]float64{2}, 2)
	if _, err := Train(md, Config{}); err == nil {
		t.Fatal("3-class data accepted")
	}
	empty := dataset.New(xorData(1, 1).Schema, 0)
	empty.Labels = []int{}
	if _, err := Train(empty, Config{}); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestLearnsXOR(t *testing.T) {
	train := xorData(3000, 2)
	test := xorData(800, 3)
	m, err := Train(train, Config{Rounds: 80, MaxDepth: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.9 {
		t.Fatalf("XOR accuracy %.3f < 0.9", acc)
	}
	if m.NumClasses() != 2 {
		t.Fatalf("NumClasses=%d", m.NumClasses())
	}
}

func TestProbAndScoreConsistent(t *testing.T) {
	m, err := Train(xorData(800, 5), Config{Rounds: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		p := m.Prob(x)
		if p < 0 || p > 1 {
			t.Fatalf("Prob=%g", p)
		}
		want := 0
		if p > 0.5 {
			want = 1
		}
		if m.Predict(x) != want {
			t.Fatal("Predict inconsistent with Prob")
		}
	}
}

func TestBoostingImprovesWithRounds(t *testing.T) {
	train := xorData(2000, 8)
	test := xorData(500, 9)
	weak, err := Train(train, Config{Rounds: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Train(train, Config{Rounds: 80, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if strong.Accuracy(test) <= weak.Accuracy(test) {
		t.Fatalf("80 rounds (%.3f) not better than 2 rounds (%.3f)",
			strong.Accuracy(test), weak.Accuracy(test))
	}
}

func TestDeterministic(t *testing.T) {
	train := xorData(500, 11)
	a, err := Train(train, Config{Rounds: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(train, Config{Rounds: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if math.Abs(a.Score(x)-b.Score(x)) > 1e-12 {
			t.Fatal("same-seed models diverge")
		}
	}
}

func TestSingleClassData(t *testing.T) {
	s := &dataset.Schema{
		Attrs:   []dataset.Attr{{Name: "x", Kind: dataset.Numeric}},
		Classes: []string{"neg", "pos"},
	}
	d := dataset.New(s, 10)
	for i := 0; i < 10; i++ {
		d.AppendRow([]float64{float64(i)}, 1)
	}
	m, err := Train(d, Config{Rounds: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{3}); got != 1 {
		t.Fatalf("single-class model predicted %d", got)
	}
	if math.IsInf(m.Bias, 0) || math.IsNaN(m.Bias) {
		t.Fatalf("bias %g not finite", m.Bias)
	}
}

func TestOnSyntheticDataset(t *testing.T) {
	cfg, err := datagen.Spec("covertype")
	if err != nil {
		t.Fatal(err)
	}
	data, err := cfg.Generate(3000, 14)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	train, test := data.Split(1.0/3, rng)
	m, err := Train(train, Config{Rounds: 60, MaxDepth: 4, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.75 {
		t.Fatalf("accuracy %.3f < 0.75", acc)
	}
}

func BenchmarkPredict(b *testing.B) {
	m, err := Train(xorData(2000, 17), Config{Rounds: 50, Seed: 18})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.3, -0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

// Package shahin is a Go implementation of Shahin (Hasani et al., SIGMOD
// 2021): fast generation of explanations for multiple predictions.
//
// Perturbation-based explainers — LIME, Anchor, and KernelSHAP — spend
// almost all of their time invoking the black-box classifier on perturbed
// tuples. When many predictions must be explained at once, much of that
// work is redundant. Shahin mines frequent itemsets over the batch,
// materialises labelled perturbations frozen on those itemsets, and
// reuses them across every explanation, typically cutting classifier
// invocations by an order of magnitude without changing the explanations.
//
// Models trained in-process (the built-in random forest and
// gradient-boosted trees) additionally unlock ExactSHAP: a
// polynomial-time TreeSHAP walk over the owned trees that produces
// exact Shapley values with no perturbation sampling at all.
//
// # Quick start
//
//	train, test := data.Split(1.0/3, rng)
//	stats, _ := shahin.ComputeStats(train)
//	model, _ := shahin.TrainForest(train, shahin.ForestConfig{})
//	batch, _ := shahin.NewBatch(stats, model, shahin.Options{Explainer: shahin.LIME})
//	res, _ := batch.ExplainAll(test.Rows(0, 1000))
//	for _, e := range res.Explanations { fmt.Println(e.Attribution.TopK(5)) }
//
// Three entry points cover the paper's deployment modes:
//
//   - NewBatch: all tuples known up front (Algorithms 1–3).
//   - NewStream: requests arrive one at a time under a memory budget
//     (§3.5) with periodic itemset re-mining and negative-border
//     promotion.
//   - Sequential / Dist / Greedy: the baselines the paper evaluates
//     against, useful for measuring speedups on your own workload.
//
// Any model implementing the two-method Classifier interface can be
// explained; the built-in random forest (TrainForest) matches the paper's
// experimental setup.
package shahin

import (
	"context"
	"io"
	"math/rand"

	"shahin/internal/core"
	"shahin/internal/datagen"
	"shahin/internal/dataset"
	"shahin/internal/explain"
	"shahin/internal/explain/anchor"
	"shahin/internal/explain/exact"
	"shahin/internal/explain/lime"
	"shahin/internal/explain/shap"
	"shahin/internal/explain/sshap"
	"shahin/internal/fault"
	"shahin/internal/gbt"
	"shahin/internal/nb"
	"shahin/internal/obs"
	"shahin/internal/rf"
	"shahin/internal/store"
)

// Core data types.
type (
	// Dataset is a column-major table of tuples with optional labels.
	Dataset = dataset.Dataset
	// Schema describes attributes (categorical or numeric) and classes.
	Schema = dataset.Schema
	// Attr is one attribute of a schema.
	Attr = dataset.Attr
	// Stats holds the training-distribution statistics explainers sample
	// from; compute once per training set with ComputeStats.
	Stats = dataset.Stats
	// Item is a packed (attribute, bin) pair.
	Item = dataset.Item
	// Itemset is a canonically ordered set of items.
	Itemset = dataset.Itemset
)

// Attribute kinds.
const (
	// Categorical attributes take one of a fixed set of values.
	Categorical = dataset.Categorical
	// Numeric attributes take real values (quartile-discretised for
	// itemisation).
	Numeric = dataset.Numeric
)

// Classifier is the black-box model interface: NumClasses and Predict.
type Classifier = rf.Classifier

// Forest is the built-in random forest classifier.
type Forest = rf.Forest

// ForestConfig controls TrainForest.
type ForestConfig = rf.Config

// ClassifierFunc adapts a plain function to the Classifier interface.
type ClassifierFunc = rf.Func

// CountingClassifier wraps a Classifier and counts Predict calls; wrap
// your model with NewCountingClassifier to measure invocation savings.
type CountingClassifier = rf.Counting

// NaiveBayes is the built-in naive Bayes classifier (a second black-box
// model with a very different decision surface from the forest).
type NaiveBayes = nb.Model

// GBT is the built-in gradient-boosted-trees classifier (binary only).
type GBT = gbt.Model

// GBTConfig controls TrainGBT.
type GBTConfig = gbt.Config

// Explanation outputs.
type (
	// Attribution is a per-attribute importance vector (LIME, SHAP).
	Attribution = explain.Attribution
	// Rule is an IF-THEN explanation with precision and coverage (Anchor).
	Rule = explain.Rule
	// Explanation is the per-tuple result: Attribution or Rule.
	Explanation = core.Explanation
)

// Run configuration and results.
type (
	// Options configures a Shahin run (explainer kind, itemset mining,
	// perturbation budget τ, cache size, seed).
	Options = core.Options
	// Result holds explanations plus the run's cost report.
	Result = core.Result
	// Report is the cost accounting of one run.
	Report = core.Report
	// Batch is the batch variant of Shahin.
	Batch = core.Batch
	// Stream is the streaming variant of Shahin.
	Stream = core.Stream
	// Warm is the serving variant of Shahin: a long-lived explainer whose
	// pool persists across ExplainAll flushes (cmd/shahin-serve's engine).
	Warm = core.Warm
)

// Per-explainer tuning knobs (the matching fields of Options).
type (
	// LIMEConfig tunes the LIME explainer (sample budget, kernel width,
	// ridge penalty, reuse cap).
	LIMEConfig = lime.Config
	// AnchorConfig tunes the Anchor explainer (precision threshold τ,
	// bandit ε/δ, beam width).
	AnchorConfig = anchor.Config
	// SHAPConfig tunes the KernelSHAP explainer (coalition budget,
	// base-rate samples, reuse cap).
	SHAPConfig = shap.Config
	// SSHAPConfig tunes the Sampling-Shapley explainer (permutations,
	// base-rate samples).
	SSHAPConfig = sshap.Config
	// ExactConfig tunes the exact TreeSHAP fast path (background
	// sample size for the cover weights, seed).
	ExactConfig = exact.Config
)

// Observability: set Options.Recorder to collect stage-scoped spans,
// live progress counters, and latency histograms from a run, and
// optionally serve them over HTTP while the run is in flight.
type (
	// Recorder collects spans, counters, and histograms; nil disables
	// all instrumentation at zero cost.
	Recorder = obs.Recorder
	// MetricsServer serves a Recorder's /metrics, /progress, /trace, and
	// /debug/pprof endpoints.
	MetricsServer = obs.Server
	// RecorderMetrics is the /metrics JSON snapshot shape.
	RecorderMetrics = obs.Metrics
	// RecorderProgress is the /progress JSON snapshot shape.
	RecorderProgress = obs.Progress
)

// NewRecorder returns an empty observability recorder; pass it via
// Options.Recorder (it may be shared across runs — counters accumulate).
func NewRecorder() *Recorder { return obs.NewRecorder() }

// ServeMetrics serves rec on addr (":0" picks a free port; see
// MetricsServer.Addr) until the returned server is closed.
func ServeMetrics(addr string, rec *Recorder) (*MetricsServer, error) {
	return obs.Serve(addr, rec)
}

// Robustness: set Options.Fault to run against a fallible classifier
// backend (injected faults, per-call deadlines, retry/backoff, circuit
// breaking), and use the Ctx entry points for cancellable runs that
// return partial results.
type (
	// FaultConfig configures the fault-tolerance chain around the
	// classifier: injection rates, per-call deadline, retry/backoff, and
	// circuit-breaker knobs. The zero value disables everything.
	FaultConfig = fault.Config
	// FallibleClassifier is a classifier whose predictions may fail;
	// wrap your own with NewFallibleAdapter-style code or pass a
	// FaultConfig and let the chain adapt the infallible interface.
	FallibleClassifier = fault.FallibleClassifier
	// Status reports how an explanation was produced: ok, degraded
	// (classifier failures papered over by fallback labels), or failed.
	Status = core.Status
)

// Explanation status values.
const (
	// StatusOK: every classifier call behind the explanation succeeded.
	StatusOK = core.StatusOK
	// StatusDegraded: some calls failed and fallback labels were used.
	StatusDegraded = core.StatusDegraded
	// StatusFailed: the tuple was not explained (cancelled or exhausted).
	StatusFailed = core.StatusFailed
)

// Kind selects the explanation algorithm.
type Kind = core.Kind

// Explainer kinds.
const (
	// LIME trains a local surrogate and reports feature weights.
	LIME = core.LIME
	// Anchor finds high-precision IF-THEN rules.
	Anchor = core.Anchor
	// SHAP estimates Shapley values with the SHAP kernel.
	SHAP = core.SHAP
	// SampleSHAP estimates Shapley values by permutation sampling — an
	// extension beyond the paper's three algorithms.
	SampleSHAP = core.SampleSHAP
	// ExactSHAP computes exact Shapley values with a polynomial-time
	// TreeSHAP walk over the owned tree ensemble — no perturbation
	// sampling at all. Legal only against a local tree-backed
	// classifier without fault injection; other runs silently fall
	// back to KernelSHAP with a provenance marker.
	ExactSHAP = core.ExactSHAP
)

// ParseKind converts "lime", "anchor", "shap", or "exactshap" to a Kind.
func ParseKind(s string) (Kind, error) { return core.ParseKind(s) }

// ComputeStats derives the training-distribution statistics every
// explainer needs from a (training) dataset.
func ComputeStats(d *Dataset) (*Stats, error) { return dataset.Compute(d) }

// TrainForest fits the built-in random forest on a labelled dataset.
func TrainForest(d *Dataset, cfg ForestConfig) (*Forest, error) { return rf.Train(d, cfg) }

// TrainNaiveBayes fits the built-in naive Bayes classifier.
func TrainNaiveBayes(d *Dataset) (*NaiveBayes, error) { return nb.Train(d) }

// TrainGBT fits the built-in gradient-boosted-trees classifier (binary
// classification only).
func TrainGBT(d *Dataset, cfg GBTConfig) (*GBT, error) { return gbt.Train(d, cfg) }

// NewCountingClassifier wraps a classifier with an invocation counter.
func NewCountingClassifier(c Classifier) *CountingClassifier { return rf.NewCounting(c) }

// NewBatch creates Shahin's batch explainer: call ExplainAll with every
// tuple to explain.
func NewBatch(st *Stats, cls Classifier, opts Options) (*Batch, error) {
	return core.NewBatch(st, cls, opts)
}

// NewStream creates Shahin's streaming explainer: call Explain as each
// request arrives.
func NewStream(st *Stats, cls Classifier, opts Options) (*Stream, error) {
	return core.NewStream(st, cls, opts)
}

// NewWarm creates Shahin's warm serving explainer: call ExplainAll per
// micro-batch flush; the itemset pool persists across calls and is
// re-mined after staleAfter explained tuples (<= 0 selects
// core.DefaultStaleAfter).
func NewWarm(st *Stats, cls Classifier, opts Options, staleAfter int) (*Warm, error) {
	return core.NewWarm(st, cls, opts, staleAfter)
}

// Sequential explains the batch one tuple at a time with no reuse — the
// baseline all speedup ratios are measured against.
func Sequential(st *Stats, cls Classifier, opts Options, tuples [][]float64) (*Result, error) {
	return core.Sequential(st, cls, opts, tuples)
}

// SequentialCtx is Sequential under a context: cancellation stops the
// loop between tuples and returns the finished explanations as a
// partial Result alongside ctx.Err(); unattempted tuples carry
// StatusFailed.
func SequentialCtx(ctx context.Context, st *Stats, cls Classifier, opts Options, tuples [][]float64) (*Result, error) {
	return core.SequentialCtx(ctx, st, cls, opts, tuples)
}

// Dist simulates the paper's DIST-k baseline: the batch split evenly
// across k sequential workers, reporting the average worker time.
func Dist(st *Stats, cls Classifier, opts Options, tuples [][]float64, k int) (*Result, error) {
	return core.Dist(st, cls, opts, tuples, k)
}

// DistCtx is Dist under a context: cancellation stops the simulation
// between machines, returning a partial Result alongside ctx.Err().
func DistCtx(ctx context.Context, st *Stats, cls Classifier, opts Options, tuples [][]float64, k int) (*Result, error) {
	return core.DistCtx(ctx, st, cls, opts, tuples, k)
}

// Greedy runs the paper's GREEDY baseline: persist every perturbation
// under a byte budget with LRU eviction and reuse opportunistically.
func Greedy(st *Stats, cls Classifier, opts Options, tuples [][]float64, budgetBytes int64) (*Result, error) {
	return core.Greedy(st, cls, opts, tuples, budgetBytes)
}

// DatasetNames lists the built-in synthetic dataset families, shaped
// after the paper's five benchmarks (census, recidivism, lending,
// kddcup99, covertype).
func DatasetNames() []string { return datagen.Names() }

// GenerateDataset produces rows tuples of a built-in synthetic family
// (rows <= 0 uses the paper-scale size — up to 4 M rows; prefer an
// explicit size).
func GenerateDataset(name string, rows int, seed int64) (*Dataset, error) {
	cfg, err := datagen.Spec(name)
	if err != nil {
		return nil, err
	}
	return cfg.Generate(rows, seed)
}

// SplitDataset shuffles and splits a dataset into train and test parts
// with the given training fraction, matching the paper's 1/3 train, 2/3
// explain protocol when frac = 1/3.
func SplitDataset(d *Dataset, frac float64, seed int64) (train, test *Dataset) {
	return d.Split(frac, rand.New(rand.NewSource(seed)))
}

// ReadCSV parses a dataset in the format WriteCSV produces, validating
// the header against the schema.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) { return dataset.ReadCSV(r, schema) }

// InferOptions tunes InferCSV's schema inference.
type InferOptions = dataset.InferOptions

// InferCSV reads a headered CSV without a schema, inferring attribute
// kinds (numeric vs categorical) and the class column; see InferOptions.
func InferCSV(r io.Reader, opts InferOptions) (*Dataset, error) {
	return dataset.InferSchema(r, opts)
}

// WriteCSV writes the dataset with a header row; labels (when present)
// become a trailing "class" column.
func WriteCSV(w io.Writer, d *Dataset) error { return dataset.WriteCSV(w, d) }

// ExplanationStore maps tuples to pre-computed explanations with exact
// lookup and gob persistence: pre-compute overnight with a Batch run,
// serve during the day.
type ExplanationStore = store.Store

// NewExplanationStore returns an empty store.
func NewExplanationStore() *ExplanationStore { return store.New() }

// BuildExplanationStore indexes a Batch run's output.
func BuildExplanationStore(tuples [][]float64, exps []Explanation) (*ExplanationStore, error) {
	return store.Build(tuples, exps)
}

// LoadExplanationStore reads a store written by (*ExplanationStore).Save.
func LoadExplanationStore(r io.Reader) (*ExplanationStore, error) { return store.Load(r) }

package shahin_test

import (
	"bytes"
	"testing"

	"shahin"
)

// pipeline builds the standard fixtures through the public API only.
func pipeline(t *testing.T, name string, rows int, seed int64) (*shahin.Stats, *shahin.Forest, *shahin.Dataset) {
	t.Helper()
	d, err := shahin.GenerateDataset(name, rows, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := shahin.SplitDataset(d, 1.0/3, seed+1)
	st, err := shahin.ComputeStats(train)
	if err != nil {
		t.Fatal(err)
	}
	model, err := shahin.TrainForest(train, shahin.ForestConfig{NumTrees: 25, MaxDepth: 8, Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	return st, model, test
}

func TestPublicBatchPipeline(t *testing.T) {
	st, model, test := pipeline(t, "recidivism", 2400, 1)
	counting := shahin.NewCountingClassifier(model)
	batch, err := shahin.NewBatch(st, counting, shahin.Options{
		Explainer: shahin.LIME,
		LIME:      shahin.LIMEConfig{NumSamples: 250},
		Tau:       40,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tuples := test.Rows(0, 40)
	res, err := batch.ExplainAll(tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) != 40 {
		t.Fatalf("explained %d of 40", len(res.Explanations))
	}
	if counting.Invocations() != res.Report.Invocations {
		t.Fatalf("external counter %d != report %d", counting.Invocations(), res.Report.Invocations)
	}
	if got := res.Explanations[0].Attribution; got == nil || len(got.Weights) != test.NumAttrs() {
		t.Fatal("malformed attribution")
	}
}

func TestPublicStreamPipeline(t *testing.T) {
	st, model, test := pipeline(t, "recidivism", 2400, 5)
	stream, err := shahin.NewStream(st, model, shahin.Options{
		Explainer:       shahin.SHAP,
		SHAP:            shahin.SHAPConfig{NumSamples: 128, BaseSamples: 30},
		Tau:             30,
		StreamRecompute: 25,
		Seed:            6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tup := range test.Rows(0, 60) {
		exp, err := stream.Explain(tup)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if exp.Attribution == nil {
			t.Fatalf("tuple %d: no attribution", i)
		}
	}
	if rep := stream.Report(); rep.Tuples != 60 {
		t.Fatalf("report tuples=%d", rep.Tuples)
	}
}

func TestPublicBaselines(t *testing.T) {
	st, model, test := pipeline(t, "recidivism", 1800, 7)
	opts := shahin.Options{Explainer: shahin.LIME, LIME: shahin.LIMEConfig{NumSamples: 150}, Seed: 8}
	tuples := test.Rows(0, 12)

	seq, err := shahin.Sequential(st, model, opts, tuples)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := shahin.Dist(st, model, opts, tuples, 4)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := shahin.Greedy(st, model, opts, tuples, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*shahin.Result{"seq": seq, "dist": dist, "greedy": greedy} {
		if len(r.Explanations) != len(tuples) {
			t.Fatalf("%s explained %d of %d", name, len(r.Explanations), len(tuples))
		}
	}
}

func TestPublicAnchorRuleRendering(t *testing.T) {
	st, model, test := pipeline(t, "recidivism", 1800, 9)
	batch, err := shahin.NewBatch(st, model, shahin.Options{Explainer: shahin.Anchor, Tau: 30, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := batch.ExplainAll(test.Rows(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Explanations {
		if e.Rule == nil {
			t.Fatal("no rule")
		}
		if s := e.Rule.Describe(test.Schema); s == "" {
			t.Fatal("empty rule description")
		}
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	d, err := shahin.GenerateDataset("covertype", 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := shahin.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := shahin.ReadCSV(&buf, d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 50 {
		t.Fatalf("round trip rows=%d", back.NumRows())
	}
}

func TestPublicDatasetNames(t *testing.T) {
	names := shahin.DatasetNames()
	if len(names) != 5 {
		t.Fatalf("DatasetNames=%v", names)
	}
	if _, err := shahin.GenerateDataset("unknown", 10, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPublicCustomClassifier(t *testing.T) {
	st, _, test := pipeline(t, "recidivism", 1500, 12)
	cls := shahin.ClassifierFunc{Classes: 2, F: func(x []float64) int {
		if x[0] > 0 {
			return 1
		}
		return 0
	}}
	res, err := shahin.Sequential(st, cls, shahin.Options{
		Explainer: shahin.LIME, LIME: shahin.LIMEConfig{NumSamples: 100}, Seed: 13,
	}, test.Rows(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) != 3 {
		t.Fatal("custom classifier pipeline failed")
	}
}

func TestPublicParseKind(t *testing.T) {
	k, err := shahin.ParseKind("anchor")
	if err != nil || k != shahin.Anchor {
		t.Fatalf("ParseKind=%v,%v", k, err)
	}
}

func TestPublicInferCSV(t *testing.T) {
	d, err := shahin.GenerateDataset("recidivism", 120, 50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := shahin.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	inferred, err := shahin.InferCSV(&buf, shahin.InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if inferred.NumRows() != 120 {
		t.Fatalf("rows=%d", inferred.NumRows())
	}
	// The inferred dataset must be usable end to end.
	train, test := shahin.SplitDataset(inferred, 0.5, 51)
	st, err := shahin.ComputeStats(train)
	if err != nil {
		t.Fatal(err)
	}
	model, err := shahin.TrainNaiveBayes(train)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shahin.Sequential(st, model, shahin.Options{
		Explainer: shahin.LIME, LIME: shahin.LIMEConfig{NumSamples: 80}, Seed: 52,
	}, test.Rows(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) != 2 {
		t.Fatal("inferred pipeline failed")
	}
}

func TestPublicSampleSHAP(t *testing.T) {
	st, model, test := pipeline(t, "recidivism", 1500, 53)
	res, err := shahin.Sequential(st, model, shahin.Options{
		Explainer: shahin.SampleSHAP,
		SSHAP:     shahin.SSHAPConfig{Permutations: 5, BaseSamples: 20},
		Seed:      54,
	}, test.Rows(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Explanations {
		if e.Attribution == nil {
			t.Fatal("no attribution")
		}
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation section at a reduced scale. Each benchmark runs one full
// experiment per iteration and reports the headline quantity (speedup,
// overhead %) as a custom metric; run with -v to see the full tables, or
// use cmd/shahin-bench for the complete printed output at larger scale.
package shahin_test

import (
	"bytes"
	"strconv"
	"testing"

	"shahin/internal/bench"
)

// runExperiment executes one experiment per b.N iteration and returns the
// last table.
func runExperiment(b *testing.B, fn func(bench.Config) (*bench.Table, error)) *bench.Table {
	b.Helper()
	cfg := bench.Quick()
	var tab *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		var buf bytes.Buffer
		tab.Fprint(&buf)
		b.Log("\n" + buf.String())
	}
	return tab
}

// cell parses a numeric table cell.
func cell(b *testing.B, tab *bench.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d)=%q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

// BenchmarkTable1 regenerates Table 1 (per-tuple seconds for sequential,
// Shahin-Batch, Shahin-Streaming across the five datasets).
func BenchmarkTable1(b *testing.B) {
	runExperiment(b, bench.Table1)
}

// BenchmarkFigure2 regenerates Figure 2 (Shahin vs DIST-k and GREEDY) and
// reports Shahin's speedup at the largest batch, averaged over explainers.
func BenchmarkFigure2(b *testing.B) {
	tab := runExperiment(b, bench.Figure2)
	sum, n := 0.0, 0
	last := tab.Rows[len(tab.Rows)-1][1]
	for _, row := range tab.Rows {
		if row[1] == last {
			sum += mustFloat(b, row[2])
			n++
		}
	}
	b.ReportMetric(sum/float64(n), "speedup")
}

// BenchmarkFigure3 regenerates Figure 3 and reports the mean Shahin-Batch
// speedup across datasets and explainers at the largest batch size.
func BenchmarkFigure3(b *testing.B) {
	tab := runExperiment(b, bench.Figure3)
	reportSweepSpeedup(b, tab)
}

// BenchmarkFigure4 regenerates Figure 4 (streaming) and reports the mean
// speedup at the largest batch size.
func BenchmarkFigure4(b *testing.B) {
	tab := runExperiment(b, bench.Figure4)
	reportSweepSpeedup(b, tab)
}

// BenchmarkFigure5 regenerates Figure 5 and reports the overhead
// percentage at the largest batch.
func BenchmarkFigure5(b *testing.B) {
	tab := runExperiment(b, bench.Figure5)
	b.ReportMetric(cell(b, tab, len(tab.Rows)-1, 1), "overhead%")
}

// BenchmarkFigure6 regenerates Figure 6 and reports the LIME speedup at
// tau = 100.
func BenchmarkFigure6(b *testing.B) {
	tab := runExperiment(b, bench.Figure6)
	for i, row := range tab.Rows {
		if row[0] == "100" {
			b.ReportMetric(cell(b, tab, i, 1), "speedup@tau100")
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 and reports the LIME speedup at
// the largest cache size.
func BenchmarkFigure7(b *testing.B) {
	tab := runExperiment(b, bench.Figure7)
	b.ReportMetric(cell(b, tab, len(tab.Rows)-1, 1), "speedup@maxcache")
}

// BenchmarkQuality regenerates the explanation-quality evaluation and
// reports LIME's Kendall-tau against the sequential baseline.
func BenchmarkQuality(b *testing.B) {
	tab := runExperiment(b, bench.Quality)
	for i, row := range tab.Rows {
		if row[0] == "LIME Shahin-vs-seq" {
			b.ReportMetric(cell(b, tab, i, 1), "kendall-tau")
		}
	}
}

// BenchmarkAblationSample regenerates ablation A1 (FIM sample size).
func BenchmarkAblationSample(b *testing.B) {
	runExperiment(b, bench.AblationSample)
}

// BenchmarkAblationKernel regenerates ablation A2 (SHAP size sampling).
func BenchmarkAblationKernel(b *testing.B) {
	runExperiment(b, bench.AblationKernel)
}

// BenchmarkAblationBorder regenerates ablation A3 (negative border).
func BenchmarkAblationBorder(b *testing.B) {
	runExperiment(b, bench.AblationBorder)
}

// reportSweepSpeedup averages the three explainer columns at the largest
// batch size of a Figure-3/4-shaped table.
func reportSweepSpeedup(b *testing.B, tab *bench.Table) {
	b.Helper()
	last := tab.Rows[len(tab.Rows)-1][1]
	sum, n := 0.0, 0
	for _, row := range tab.Rows {
		if row[1] != last {
			continue
		}
		for col := 2; col <= 4; col++ {
			sum += mustFloat(b, row[col])
			n++
		}
	}
	b.ReportMetric(sum/float64(n), "speedup")
}

func mustFloat(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}
